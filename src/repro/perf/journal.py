"""JSONL run journal for the fault-tolerant suite runner.

Every finished cell of a :func:`repro.perf.parallel.run_cells_parallel`
run is appended as one JSON line the moment it completes, so a crashed,
interrupted or killed run loses at most the cells that were in flight.
``--resume <journal>`` replays the journal: cells recorded as ``ok``
under the *same cell configuration* (library spec, match kind,
``max_variants``, ``verify``, ``check``) are reconstructed without
re-running, failed or missing cells run again, and the merged result is
identical to an uninterrupted run because row payloads round-trip
through JSON exactly (Python serialises floats via ``repr``, which is
lossless).

Record shapes (schema ``repro-run-journal/1``)::

    {"schema": ..., "event": "start", "spec": ..., "kind": ...,
     "names": [...], "jobs": N, "cell_timeout": ..., "retries": ...}
    {"event": "cell", "status": "ok", "name": ..., "spec": ...,
     "kind": ..., "max_variants": ..., "verify": ..., "check": ...,
     "attempts": N, "wall_s": ..., "row": {...ComparisonRow fields...}}
    {"event": "cell", "status": "failed", ..., "failure": {...}}
    {"event": "end", "stats": {...RunStats fields...}}

The ``cache`` flag is deliberately *not* part of the cell key: the
matching caches are enforced byte-identical to the uncached path
(``tests/test_perf_equivalence.py``), so rows are interchangeable.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import JournalError

if TYPE_CHECKING:
    from repro.harness.experiment import ComparisonRow

__all__ = [
    "JOURNAL_SCHEMA",
    "CellKey",
    "JournalState",
    "JournalWriter",
    "cell_key",
    "load_journal",
    "row_to_payload",
    "payload_to_row",
]

JOURNAL_SCHEMA = "repro-run-journal/1"

#: (spec, kind, name, max_variants, verify, check) — everything that can
#: change a row's payload.  See the module docstring for why ``cache``
#: is excluded.
CellKey = Tuple[str, str, str, int, bool, bool]


def cell_key(
    spec: str,
    kind: str,
    name: str,
    max_variants: int,
    verify: bool,
    check: bool,
) -> CellKey:
    """The identity under which a journalled cell may be reused."""
    return (spec, kind, name, int(max_variants), bool(verify), bool(check))


def row_to_payload(row: "ComparisonRow") -> Dict[str, object]:
    """Flatten a :class:`~repro.harness.experiment.ComparisonRow` to JSON."""
    return dataclasses.asdict(row)


def payload_to_row(payload: Dict[str, object]) -> "ComparisonRow":
    """Rebuild a :class:`~repro.harness.experiment.ComparisonRow`.

    Unknown keys (from a journal written by a newer version) are
    dropped rather than rejected, so old code can still resume.
    """
    from repro.harness.experiment import ComparisonRow

    names = {f.name for f in dataclasses.fields(ComparisonRow)}
    return ComparisonRow(**{k: v for k, v in payload.items() if k in names})


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovered from a journal file."""

    path: str
    #: cell key -> ("ok" row payload, attempts) for the *last* ok record.
    completed: Dict[CellKey, Tuple[Dict[str, object], int]] = field(
        default_factory=dict
    )
    #: cell key -> failure payload for keys whose last record failed.
    failures: Dict[CellKey, Dict[str, object]] = field(default_factory=dict)
    #: every parsed record, in file order (for reporting/tests).
    records: List[Dict[str, object]] = field(default_factory=list)

    def completed_row(self, key: CellKey) -> Optional["ComparisonRow"]:
        """The reconstructed row for ``key``, or None."""
        entry = self.completed.get(key)
        if entry is None:
            return None
        return payload_to_row(entry[0])


def load_journal(path: str) -> JournalState:
    """Parse a journal; raises :class:`JournalError` (``R004``) when broken.

    A truncated *final* line (the run died mid-write) is tolerated and
    ignored; malformed earlier lines or a wrong schema are errors.
    """
    if not os.path.exists(path):
        raise JournalError(f"[R004] run journal {path!r} does not exist")
    state = JournalState(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if lineno == len(lines):
                break  # torn tail write from a killed run
            raise JournalError(
                f"[R004] run journal {path}:{lineno}: malformed JSON record"
            )
        if not isinstance(record, dict):
            raise JournalError(
                f"[R004] run journal {path}:{lineno}: record is not an object"
            )
        schema = record.get("schema")
        if schema is not None and schema != JOURNAL_SCHEMA:
            raise JournalError(
                f"[R004] run journal {path}:{lineno}: schema {schema!r} "
                f"is not {JOURNAL_SCHEMA!r}"
            )
        state.records.append(record)
        if record.get("event") != "cell":
            continue
        try:
            key = cell_key(
                record["spec"],
                record["kind"],
                record["name"],
                record["max_variants"],
                record["verify"],
                record["check"],
            )
        except KeyError as exc:
            raise JournalError(
                f"[R004] run journal {path}:{lineno}: cell record is "
                f"missing the {exc.args[0]!r} field"
            )
        if record.get("status") == "ok":
            row = record.get("row")
            if not isinstance(row, dict):
                raise JournalError(
                    f"[R004] run journal {path}:{lineno}: ok record "
                    "carries no row payload"
                )
            state.completed[key] = (row, int(record.get("attempts", 1)))
            state.failures.pop(key, None)
        else:
            state.failures[key] = record.get("failure") or {}
    return state


class JournalWriter:
    """Append-only journal emitter; one ``open``+``fsync`` per record.

    Opening per record (instead of holding the handle) keeps every line
    durable against the supervisor itself being killed, which is the
    exact scenario the journal exists for.
    """

    def __init__(self, path: str):
        self.path = path

    def _append(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def start(
        self,
        spec: str,
        kind: str,
        names: List[str],
        jobs: int,
        cell_timeout: Optional[float],
        retries: int,
        resumed_cells: int = 0,
    ) -> None:
        self._append(
            {
                "schema": JOURNAL_SCHEMA,
                "event": "start",
                "spec": spec,
                "kind": kind,
                "names": list(names),
                "jobs": jobs,
                "cell_timeout": cell_timeout,
                "retries": retries,
                "resumed_cells": resumed_cells,
            }
        )

    def cell_ok(
        self,
        key: CellKey,
        row: "ComparisonRow",
        attempts: int,
        wall_s: float,
    ) -> None:
        spec, kind, name, max_variants, verify, check = key
        self._append(
            {
                "event": "cell",
                "status": "ok",
                "name": name,
                "spec": spec,
                "kind": kind,
                "max_variants": max_variants,
                "verify": verify,
                "check": check,
                "attempts": attempts,
                "wall_s": round(wall_s, 6),
                "row": row_to_payload(row),
            }
        )

    def cell_failed(
        self,
        key: CellKey,
        failure: Dict[str, object],
        attempts: int,
        wall_s: float,
    ) -> None:
        spec, kind, name, max_variants, verify, check = key
        self._append(
            {
                "event": "cell",
                "status": "failed",
                "name": name,
                "spec": spec,
                "kind": kind,
                "max_variants": max_variants,
                "verify": verify,
                "check": check,
                "attempts": attempts,
                "wall_s": round(wall_s, 6),
                "failure": failure,
            }
        )

    def end(self, stats: Dict[str, object]) -> None:
        self._append({"event": "end", "stats": stats})
