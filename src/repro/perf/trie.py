"""Pattern prefix trie: share matching work across a pattern set.

Rich libraries produce hundreds of patterns whose NAND2/INV
decompositions overlap heavily — the variants of one gate share whole
subtrees, and different gates (AND4 vs NAND4 vs their duals) reduce to
the same shapes.  The seed matcher enumerated every pattern independently
at every subject node; this module merges that work on two levels:

* **Binding groups** — patterns whose *ordered* structural serialization
  (kinds, fanin order, leaf sharing, swap-safe marks) is identical are
  matched by enumerating one representative; every member's bindings are
  recovered through the first-visit correspondence.  The enumeration is
  purely structure-driven, so the translated binding stream is exactly —
  element for element, in order — what enumerating the member itself
  would produce.  Grouping keys include the swap-safe marks so the
  symmetry pruning applied for the representative is the one every
  member would apply.
* **Shape interning** — the structural-feasibility memo (`Matcher._feasible`)
  is keyed by the interned *unordered* shape of a pattern subtree instead
  of the subtree's identity.  Feasibility is invariant under child order
  and ignores leaf pins and sharing, so one cache entry serves every
  occurrence of a shape across the entire pattern set: shared prefixes
  are walked once per subject node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.library.patterns import PatternGraph, PatternNode, PatternSet
from repro.network.subject import NodeType

__all__ = ["PatternGroup", "PatternTrie"]


class PatternGroup:
    """Patterns sharing one ordered structural serialization.

    Attributes:
        rep: the representative pattern (first member in set order); all
            binding enumeration runs against its nodes.
        members: every pattern in the group, in pattern-set order.
        translations: ``id(pattern) -> (rep uid -> member uid)`` map, with
            ``None`` for the representative itself (identity).
    """

    __slots__ = ("rep", "members", "translations")

    def __init__(self, rep: PatternGraph):
        self.rep = rep
        self.members: List[PatternGraph] = [rep]
        self.translations: Dict[int, Optional[Dict[int, int]]] = {id(rep): None}

    def add(self, pattern: PatternGraph, rep_order: List[PatternNode],
            order: List[PatternNode]) -> None:
        self.members.append(pattern)
        self.translations[id(pattern)] = {
            rep_node.uid: node.uid for rep_node, node in zip(rep_order, order)
        }


def _ordered_serial(
    pattern: PatternGraph,
) -> Tuple[Tuple[Tuple, ...], List[PatternNode]]:
    """(token tuple, first-visit node order) of a pattern's exact structure.

    The serialization is a prefix code (INV: one child, NAND2: two,
    leaves and back-references terminal), so equal token tuples imply the
    first-visit orders are aligned by a structure-preserving isomorphism
    — the correspondence used to translate bindings between group
    members.
    """
    tokens: List[Tuple] = []
    order: List[PatternNode] = []
    index: Dict[int, int] = {}
    swap_safe = pattern.swap_safe

    def visit(node: PatternNode) -> None:
        key = id(node)
        local = index.get(key)
        if local is not None:
            tokens.append(("ref", local))
            return
        index[key] = len(order)
        order.append(node)
        kind = node.kind
        if kind is NodeType.PI:
            tokens.append(("L",))
        elif kind is NodeType.INV:
            tokens.append(("I",))
            visit(node.fanins[0])
        else:
            tokens.append(("N", node.uid in swap_safe))
            visit(node.fanins[0])
            visit(node.fanins[1])

    visit(pattern.root)
    return tuple(tokens), order


def _shape_key(node: PatternNode, memo: Dict[int, object]) -> object:
    """Canonical *unordered* shape of a pattern subtree (pins erased).

    This is exactly the information structural feasibility depends on:
    the check recurses over kinds trying both child orders and terminates
    at leaves unconditionally, so it is invariant under child order, leaf
    identity and sharing.
    """
    key = memo.get(id(node))
    if key is not None:
        return key
    kind = node.kind
    if kind is NodeType.PI:
        key = "L"
    elif kind is NodeType.INV:
        key = ("I", _shape_key(node.fanins[0], memo))
    else:
        a = _shape_key(node.fanins[0], memo)
        b = _shape_key(node.fanins[1], memo)
        if repr(a) > repr(b):
            a, b = b, a
        key = ("N", a, b)
    memo[id(node)] = key
    return key


class PatternTrie:
    """Binding groups plus interned feasibility shapes for a pattern set.

    Attributes:
        groups: every :class:`PatternGroup`, in first-appearance order.
        group_of: ``id(pattern) -> PatternGroup``.
        shape_of: ``id(pattern node) -> interned shape id`` for every node
            of every pattern; nodes with equal unordered shape share one id.
        n_shapes: number of distinct shapes interned.
    """

    __slots__ = ("groups", "group_of", "shape_of", "n_shapes")

    def __init__(self, patterns: PatternSet):
        self.groups: List[PatternGroup] = []
        self.group_of: Dict[int, PatternGroup] = {}
        by_serial: Dict[Tuple, Tuple[PatternGroup, List[PatternNode]]] = {}
        for pattern in patterns.patterns:
            serial, order = _ordered_serial(pattern)
            if len(order) != len(pattern.nodes):
                # A node unreachable from the root (cannot happen with the
                # current builder) would leave bindings incomplete after
                # translation; keep such a pattern in a singleton group.
                serial = ("solo", id(pattern))
            entry = by_serial.get(serial)
            if entry is None:
                group = PatternGroup(pattern)
                by_serial[serial] = (group, order)
                self.groups.append(group)
            else:
                group, rep_order = entry
                group.add(pattern, rep_order, order)
            self.group_of[id(pattern)] = group

        intern: Dict[object, int] = {}
        self.shape_of: Dict[int, int] = {}
        memo: Dict[int, object] = {}
        for pattern in patterns.patterns:
            for node in pattern.nodes:
                key = _shape_key(node, memo)
                sid = intern.get(key)
                if sid is None:
                    sid = len(intern)
                    intern[key] = sid
                self.shape_of[id(node)] = sid
        self.n_shapes = len(intern)

    def __repr__(self) -> str:
        n_patterns = sum(len(g.members) for g in self.groups)
        return (
            f"PatternTrie({n_patterns} patterns in {len(self.groups)} groups, "
            f"{self.n_shapes} shapes)"
        )
