"""Patch certification for incremental (ECO) remapping.

After :func:`repro.eco.eco_remap` splices a base run's labels into an
edited subject graph, :func:`certify_patch` re-certifies *just the
patch*: it replays the cover walk of the spliced result and structurally
verifies every selected match — distinguishing spliced (reused) matches,
whose rebinding through the canonical cone ordering is the novel step,
from freshly remapped ones — and cross-checks arrival consistency and
run metadata against the base mapping.  Unlike the full mapping
certificate (:mod:`repro.check.certificate`), no simulation runs: the
pass is cheap enough to gate every incremental call.

``E001``  a spliced (reused) match fails its match-class rules in the
          *edited* subject — the cone rebinding produced a bad match;
``E002``  a freshly remapped (dirty-region) match fails its rules;
``E003``  a covered node's stored arrival differs from the arrival its
          selected match implies over its leaf arrivals (a stale spliced
          label would surface here);
``E004``  a primary output's driver is missing from the patched cover or
          carries no selected match;
``E005``  the eco run's metadata (match kind, engine, library,
          objective) diverges from the base mapping's — the reuse
          premise itself is violated.

Individual match-rule violations additionally surface under their
``C101``–``C106`` primitive codes, exactly as the full certificate does.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Set

from repro.check.diagnostics import CheckReport
from repro.core.cover import signal_name
from repro.core.match import MatchKind, subject_uses, verify_match
from repro.core.result import MappingResult
from repro.errors import CertificateError

__all__ = ["certify_patch"]

_TOL = 1e-6


def certify_patch(
    eco: MappingResult,
    reused_uids: FrozenSet[int],
    base: MappingResult,
    raise_on_error: bool = False,
) -> CheckReport:
    """Certify the spliced cover of one incremental remap.

    Args:
        eco: the mapping :func:`repro.eco.eco_remap` produced for the
            edited network.
        reused_uids: uids (in the edited subject) whose labels were
            spliced in from the base run.
        base: the base mapping the splice drew from.
        raise_on_error: raise :class:`~repro.errors.CertificateError`
            when the report contains error diagnostics.

    Returns:
        A :class:`CheckReport`; ``meta`` records the reused/remapped
        split of the *covered* nodes.
    """
    report = CheckReport()
    labels = eco.labels
    subject = labels.subject
    kind = MatchKind(eco.match_kind)

    # E005: the reuse premise — same kind, engine, library, objective.
    for field_name, eco_value, base_value in (
        ("match_kind", eco.match_kind, base.match_kind),
        ("engine", eco.engine, base.engine),
        ("library", eco.library, base.library),
        ("objective", labels.objective, base.labels.objective),
    ):
        if eco_value != base_value:
            report.add(
                "E005",
                f"eco run {field_name} {eco_value!r} != base mapping "
                f"{field_name} {base_value!r}",
                obj=eco.netlist.name,
            )

    covered_reused = 0
    covered_remapped = 0
    covered: Set[int] = set()
    uses = subject_uses(subject) if kind is MatchKind.EXACT else None
    queue = deque(driver for _, driver in subject.pos)
    while queue:
        node = queue.popleft()
        if node.is_pi or node.uid in covered:
            continue
        covered.add(node.uid)
        spliced = node.uid in reused_uids
        match = labels.best[node.uid]
        if match is None:
            report.add(
                "E004",
                f"patched cover reaches node {node.uid} but no match is "
                f"selected there",
                obj=signal_name(node),
            )
            continue
        if spliced:
            covered_reused += 1
        else:
            covered_remapped += 1

        # E001/E002 (+ C101..C106): the match holds in the edited subject.
        verification = verify_match(match, subject, kind, uses=uses)
        if not verification.ok:
            code = "E001" if spliced else "E002"
            origin = "spliced" if spliced else "remapped"
            report.add(
                code,
                f"{origin} match {match.gate.name!r} at node {node.uid} "
                f"violates {kind.value} match rules "
                f"({len(verification)} violation(s))",
                obj=signal_name(node),
            )
            for violation in verification:
                report.add(
                    violation.code,
                    f"node {node.uid}, gate {match.gate.name!r}: "
                    f"{violation.message}",
                    obj=signal_name(node),
                )

        # A tampered binding may not cover every pattern leaf; the E001/
        # E002 pass above already reported it, so stop before leaves()
        # raises instead of crashing the certifier.
        try:
            leaves = match.leaves()
        except KeyError:
            continue

        # E003: arrival the splice/remap recorded vs. the match's cost.
        if labels.objective == "delay":
            gate = match.gate
            implied = max(
                (
                    labels.arrival[leaf.uid] + gate.pin_delay(pin)
                    for pin, leaf in leaves
                ),
                default=0.0,
            )
            stored = labels.arrival[node.uid]
            if abs(stored - implied) > _TOL:
                origin = "spliced" if spliced else "remapped"
                report.add(
                    "E003",
                    f"node {node.uid} ({origin}): stored arrival "
                    f"{stored:.6g} != {implied:.6g} implied by match "
                    f"{match.gate.name!r}",
                    obj=signal_name(node),
                )

        for _, leaf in leaves:
            if not leaf.is_pi and leaf.uid not in covered:
                queue.append(leaf)

    # E004: every PO driver reached the cover (PI drivers are exempt).
    for po_name, driver in subject.pos:
        if not driver.is_pi and driver.uid not in covered:
            report.add(
                "E004",
                f"primary output {po_name!r} driver (node {driver.uid}) "
                f"is missing from the patched cover",
                obj=po_name,
            )

    report.meta["covered_reused"] = covered_reused
    report.meta["covered_remapped"] = covered_remapped
    report.meta["nodes_reused"] = len(reused_uids)
    if raise_on_error and report.has_errors:
        raise CertificateError(
            f"eco patch certificate for {eco.netlist.name!r} failed "
            f"({report.summary()}):\n{report.format()}"
        )
    return report
