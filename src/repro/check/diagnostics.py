"""Diagnostics framework for the static verification subsystem.

Every problem the :mod:`repro.check` passes can find has a *stable code*
(``N###`` netlist, ``L###`` library, ``C###`` certificate), a fixed
severity, and an optional :class:`~repro.errors.SourceLoc`.  Codes are
append-only: once published in ``docs/CHECKING.md`` a code never changes
meaning, so scripts and CI gates can match on them.

A pass returns a :class:`CheckReport` — an ordered collection of
:class:`Diagnostic` records with severity filters, stable text formatting,
and CLI exit-code policy (:meth:`CheckReport.exit_code`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SourceLoc

__all__ = [
    "Severity",
    "SourceLoc",
    "CodeInfo",
    "CODES",
    "Diagnostic",
    "CheckReport",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow escalation order."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str


def _catalog(entries: List[Tuple[str, Severity, str]]) -> Dict[str, CodeInfo]:
    out: Dict[str, CodeInfo] = {}
    for code, severity, title in entries:
        if code in out:
            raise ValueError(f"duplicate diagnostic code {code!r}")
        out[code] = CodeInfo(code, severity, title)
    return out


#: The complete, append-only code catalog (see docs/CHECKING.md).
CODES: Dict[str, CodeInfo] = _catalog(
    [
        # ---------------- netlist / subject-graph lints (N###) --------
        ("N000", Severity.ERROR, "BLIF parse error"),
        ("N001", Severity.ERROR, "combinational cycle"),
        ("N002", Severity.ERROR, "dangling fanin reference"),
        ("N003", Severity.ERROR, "undriven primary output"),
        ("N004", Severity.WARNING, "unreachable logic node"),
        ("N005", Severity.WARNING, "duplicate primary output"),
        ("N006", Severity.ERROR, "undefined latch input"),
        ("N007", Severity.WARNING, "vacuous fanin (function ignores input)"),
        ("N008", Severity.INFO, "constant-function node with inputs"),
        ("N009", Severity.WARNING, "latch-only feedback loop"),
        ("N020", Severity.ERROR, "subject fanout list inconsistent with fanins"),
        ("N021", Severity.ERROR, "subject node order not topological"),
        ("N022", Severity.ERROR, "subject PO driver not in graph"),
        ("N023", Severity.WARNING, "structurally duplicate subject nodes"),
        ("N024", Severity.WARNING, "unreachable subject node"),
        # ---------------- library lints (L###) ------------------------
        ("L000", Severity.ERROR, "genlib parse error"),
        ("L001", Severity.ERROR, "library has no inverter"),
        ("L002", Severity.ERROR, "library has no 2-input NAND"),
        ("L003", Severity.ERROR, "pattern does not implement gate function"),
        ("L004", Severity.WARNING, "NPN-duplicate cell"),
        ("L005", Severity.WARNING, "area-delay dominated cell"),
        ("L006", Severity.WARNING, "non-positive cell area"),
        ("L007", Severity.ERROR, "negative pin block delay"),
        ("L008", Severity.WARNING, "negative load coefficient"),
        ("L009", Severity.INFO, "cell unusable for covering (constant/buffer)"),
        ("L010", Severity.WARNING, "zero-pin cell (empty support)"),
        ("L011", Severity.WARNING, "non-positive pin max load"),
        # ---------------- mapping certificates (C###) -----------------
        ("C001", Severity.ERROR, "primary output not covered"),
        ("C002", Severity.ERROR, "cover illegal: selected match not instantiated"),
        ("C003", Severity.ERROR, "selected match violates its match class"),
        ("C004", Severity.ERROR, "arrival label inconsistent with matches"),
        ("C005", Severity.ERROR, "mapped netlist not equivalent to subject"),
        ("C006", Severity.ERROR, "reported delay differs from labeling bound"),
        ("C007", Severity.ERROR, "mapped netlist structurally broken"),
        ("C008", Severity.ERROR, "no match selected at covered node"),
        ("C009", Severity.WARNING, "reported area differs from netlist area"),
        ("C010", Severity.WARNING, "netlist gate outside the certified cover"),
        ("C011", Severity.ERROR, "recovered cover misses its delay target"),
        # ---------------- match-verification primitives (C1##) --------
        ("C101", Severity.ERROR, "pattern node unbound"),
        ("C102", Severity.ERROR, "pattern edge not preserved"),
        ("C103", Severity.ERROR, "fanin multiset mismatch"),
        ("C104", Severity.ERROR, "mapping not one-to-one"),
        ("C105", Severity.ERROR, "out-degree mismatch (exact match)"),
        ("C106", Severity.ERROR, "root binding mismatch"),
        # ---------------- differential fuzzing oracles (F###) ---------
        ("F001", Severity.ERROR, "DAG cover slower than tree cover"),
        ("F002", Severity.ERROR, "mapped netlist not equivalent to source"),
        ("F003", Severity.ERROR, "packed and scalar engines disagree"),
        ("F004", Severity.ERROR, "mapping certificate rejected"),
        ("F005", Severity.ERROR, "a random cover beats the optimal label"),
        ("F006", Severity.ERROR, "mapper raised an unexpected exception"),
        ("F007", Severity.ERROR, "generated network fails structural lint"),
        ("F008", Severity.WARNING, "shrinker could not preserve the failure"),
        ("F009", Severity.ERROR, "structural and cut matching engines disagree"),
        ("F010", Severity.ERROR, "area recovery or multimap violates its contract"),
        ("F011", Severity.ERROR, "incremental (eco) remap differs from from-scratch"),
        # ---------------- eco patch certification (E###) ---------------
        ("E001", Severity.ERROR, "spliced match structurally invalid in edited subject"),
        ("E002", Severity.ERROR, "remapped (dirty-region) match structurally invalid"),
        ("E003", Severity.ERROR, "arrival label inconsistent at patched cover node"),
        ("E004", Severity.ERROR, "primary output missing from patched cover"),
        ("E005", Severity.ERROR, "eco run metadata diverges from base mapping"),
        # ---------------- source static analysis (S###) ----------------
        ("S000", Severity.ERROR, "source file does not parse"),
        ("S101", Severity.ERROR, "module-level random API call (unseeded)"),
        ("S102", Severity.ERROR, "wall-clock time source in library code"),
        ("S103", Severity.WARNING, "order-sensitive iteration over an unordered set"),
        ("S104", Severity.ERROR, "direct os.environ access outside repro.env"),
        ("S201", Severity.ERROR, "unpicklable callable handed to the worker pool"),
        ("S202", Severity.WARNING, "worker-reachable write to a mutable module global"),
        ("S301", Severity.WARNING, "broad exception handler swallows silently"),
        ("S302", Severity.WARNING, "assert used for runtime validation"),
    ]
)


@dataclass(frozen=True)
class Diagnostic:
    """One located, coded finding of a check pass.

    Attributes:
        code: stable catalog code (``N###``/``L###``/``C###``).
        message: human-readable description of this occurrence.
        severity: from the catalog (kept on the record for filtering).
        loc: source location, when the finding maps to a textual input.
        obj: the circuit/library object concerned (node, gate, PO name).
    """

    code: str
    message: str
    severity: Severity
    loc: Optional[SourceLoc] = None
    obj: Optional[str] = None

    def format(self) -> str:
        where = f"{self.loc}: " if self.loc is not None and self.loc.is_known() else ""
        what = f" [{self.obj}]" if self.obj else ""
        return f"{self.code} {self.severity.label():7s} {where}{self.message}{what}"

    def __str__(self) -> str:
        return self.format()


@dataclass
class CheckReport:
    """Ordered diagnostics from one or more passes.

    ``meta`` carries non-diagnostic run metadata (e.g. the simulation
    vector count and seed a certificate's equivalence stage used) so
    runs are reproducible; it never affects :meth:`format`, severities
    or exit codes.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def add(
        self,
        code: str,
        message: str,
        loc: Optional[SourceLoc] = None,
        obj: Optional[str] = None,
    ) -> Diagnostic:
        """Append a diagnostic; severity comes from the code catalog."""
        info = CODES.get(code)
        if info is None:
            raise KeyError(f"unknown diagnostic code {code!r}")
        diag = Diagnostic(code, message, info.severity, loc=loc, obj=obj)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "CheckReport") -> "CheckReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            out[diag.severity.label()] += 1
        return out

    def exit_code(self, strict: bool = False) -> int:
        """CLI policy: 1 on errors (or, with ``strict``, warnings too)."""
        worst = self.max_severity()
        if worst is None:
            return 0
        if worst is Severity.ERROR:
            return 1
        if strict and worst is Severity.WARNING:
            return 1
        return 0

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            d.format() for d in self.diagnostics if d.severity >= min_severity
        ]
        return "\n".join(lines)

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )

    def __repr__(self) -> str:
        return f"CheckReport({self.summary()})"
