"""Library linter: semantic checks over gate libraries and pattern sets.

The deepest check (``L003``) closes the loop the matcher depends on:
every generated NAND2-INV pattern graph is simulated exhaustively and
compared against the gate's declared truth table, so a wrong
decomposition can never silently corrupt a mapping.  The rest of the
L-series flags cells that are unusable (missing INV/NAND2 makes subject
graphs uncoverable), suspicious (negative delays, NPN duplicates,
area-delay dominated cells) or merely informational.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.check.diagnostics import CheckReport, SourceLoc
from repro.errors import LibraryError, ParseError
from repro.library.gate import Gate, GateLibrary
from repro.library.patterns import PatternGraph, PatternSet
from repro.network.bitsim import pattern_table
from repro.network.functions import TruthTable
from repro.network.npn import npn_canonical

__all__ = [
    "pattern_truth_table",
    "lint_library",
    "lint_genlib_source",
    "lint_genlib_file",
]

#: NPN canonicalisation is exhaustive; keep the duplicate scan cheap.
_NPN_LIMIT = 4


def pattern_truth_table(pattern: PatternGraph, inputs: List[str]) -> TruthTable:
    """Exhaustive truth table of a pattern graph over ``inputs`` order.

    Delegates to the bit-parallel kernel: one packed pass over the
    pattern's NAND2-INV nodes using the shared cached tiling words, so
    the whole L003 round trip (every pattern of every cell) runs in
    word-parallel form.
    """
    return pattern_table(pattern, inputs)


def _lint_cell(report: CheckReport, gate: Gate) -> None:
    """Per-cell field checks (L006-L011)."""
    if gate.area <= 0:
        report.add(
            "L006", f"cell {gate.name!r} has area {gate.area:g}", obj=gate.name
        )
    if gate.n_inputs == 0:
        report.add(
            "L010",
            f"cell {gate.name!r} has no input pins "
            f"(constant {int(gate.tt.is_const1())})",
            obj=gate.name,
        )
    for pin in gate.pins:
        if pin.rise_block < 0 or pin.fall_block < 0:
            report.add(
                "L007",
                f"cell {gate.name!r} pin {pin.name!r} has negative block "
                f"delay (rise {pin.rise_block:g}, fall {pin.fall_block:g})",
                obj=gate.name,
            )
        if pin.rise_fanout < 0 or pin.fall_fanout < 0:
            report.add(
                "L008",
                f"cell {gate.name!r} pin {pin.name!r} has negative fanout "
                f"coefficient (delay not monotone in load)",
                obj=gate.name,
            )
        if pin.max_load <= 0:
            report.add(
                "L011",
                f"cell {gate.name!r} pin {pin.name!r} has max load "
                f"{pin.max_load:g}",
                obj=gate.name,
            )


def _dominates(winner: Gate, loser: Gate) -> bool:
    """Same function, no worse area and per-pin delays, better somewhere."""
    if winner.tt != loser.tt or winner.n_inputs != loser.n_inputs:
        return False
    if winner.area > loser.area:
        return False
    strictly_better = winner.area < loser.area
    for wpin, lpin in zip(winner.pins, loser.pins):
        if wpin.block_delay > lpin.block_delay:
            return False
        if wpin.block_delay < lpin.block_delay:
            strictly_better = True
    return strictly_better


def lint_library(
    library: GateLibrary,
    max_variants: int = 4,
    check_patterns: bool = True,
) -> CheckReport:
    """Run every L-series lint over a :class:`GateLibrary`."""
    report = CheckReport()

    # L001/L002: completeness — without INV and NAND2 no decomposed
    # subject graph can be covered at all.
    if not any(g.is_inverter() for g in library):
        report.add(
            "L001",
            f"library {library.name!r} has no inverter; NAND2-INV subject "
            f"graphs cannot be covered",
            obj=library.name,
        )
    if not any(g.is_nand2() for g in library):
        report.add(
            "L002",
            f"library {library.name!r} has no 2-input NAND; NAND2-INV "
            f"subject graphs cannot be covered",
            obj=library.name,
        )

    # Per-cell field sanity.
    for gate in library:
        _lint_cell(report, gate)

    # L003/L009: pattern generation round-trip.
    if check_patterns:
        try:
            patterns = PatternSet(library, max_variants=max_variants)
        except LibraryError as exc:
            report.add("L003", f"pattern generation failed: {exc}", obj=library.name)
        else:
            for name in patterns.skipped:
                report.add(
                    "L009",
                    f"cell {name!r} has no pattern graph (constant or "
                    f"buffer); it can never be matched",
                    obj=name,
                )
            for pattern in patterns.patterns:
                gate = pattern.gate
                tt = pattern_truth_table(pattern, gate.inputs)
                if tt != gate.tt:
                    report.add(
                        "L003",
                        f"a pattern of cell {gate.name!r} computes "
                        f"{tt.to_sop_string(gate.inputs)} instead of the "
                        f"declared {gate.tt.to_sop_string(gate.inputs)}",
                        obj=gate.name,
                    )

    # L004: NPN-duplicate cells among small functions.
    first_of_class: Dict[Tuple[int, int], str] = {}
    for gate in library:
        if 0 < gate.n_inputs <= _NPN_LIMIT:
            canon = npn_canonical(gate.tt)[0]
            key = (gate.n_inputs, canon.bits)
            if key in first_of_class:
                report.add(
                    "L004",
                    f"cell {gate.name!r} is NPN-equivalent to "
                    f"{first_of_class[key]!r}",
                    obj=gate.name,
                )
            else:
                first_of_class[key] = gate.name

    # L005: area-delay dominated cells (same function, same pin order).
    gates = list(library)
    for loser in gates:
        if loser.n_inputs == 0:
            continue
        for winner in gates:
            if winner is loser:
                continue
            if _dominates(winner, loser):
                report.add(
                    "L005",
                    f"cell {loser.name!r} is dominated by {winner.name!r} "
                    f"(no worse area and pin delays); it can never win a "
                    f"delay-optimal cover",
                    obj=loser.name,
                )
                break

    return report


def lint_genlib_source(
    text: str,
    filename: Optional[str] = None,
    max_variants: int = 4,
    check_patterns: bool = True,
) -> Tuple[CheckReport, Optional[GateLibrary]]:
    """Parse genlib text and lint it; parse failures become ``L000``.

    Returns the report and the parsed library (None when parsing failed).
    """
    from repro.library.genlib import parse_genlib

    report = CheckReport()
    try:
        library = parse_genlib(
            text, name=filename or "genlib", filename=filename
        )
    except ParseError as exc:
        report.add(
            "L000",
            exc.bare_message + (f" (near {exc.token!r})" if exc.token else ""),
            loc=SourceLoc(file=exc.file or filename, line=exc.line),
        )
        return report, None
    except LibraryError as exc:
        report.add("L000", str(exc), loc=SourceLoc(file=filename))
        return report, None
    report.extend(
        lint_library(
            library, max_variants=max_variants, check_patterns=check_patterns
        )
    )
    return report, library


def lint_genlib_file(
    path: str, max_variants: int = 4, check_patterns: bool = True
) -> Tuple[CheckReport, Optional[GateLibrary]]:
    """Read and lint a genlib file (parse failures become ``L000``)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return lint_genlib_source(
        text,
        filename=path,
        max_variants=max_variants,
        check_patterns=check_patterns,
    )
