"""Static verification subsystem: linters and mapping certificates.

Three passes over the data structures the mapper trusts implicitly:

* :func:`lint_network` / :func:`lint_subject` — structural lints over
  Boolean networks and NAND2-INV subject graphs (``N###`` codes);
* :func:`lint_library` — semantic lints over gate libraries and their
  generated pattern sets (``L###`` codes);
* :func:`certify_mapping` — an independent certificate checker for one
  mapping run: cover legality, arrival self-consistency, functional
  equivalence, and the delay bound (``C###`` codes);
* :func:`certify_patch` — the cheap structural certificate for one
  incremental (ECO) remap's spliced cover (``E###`` codes).

All passes return a :class:`CheckReport` of coded, located
:class:`Diagnostic` records; none of them raises on bad input.  The
``repro check`` CLI subcommand and the opt-in ``check=`` hook of the
mappers are thin wrappers over these entry points.
"""

from repro.check.certificate import certify_mapping
from repro.check.eco import certify_patch
from repro.check.diagnostics import (
    CODES,
    CheckReport,
    CodeInfo,
    Diagnostic,
    Severity,
    SourceLoc,
)
from repro.check.library_lint import (
    lint_genlib_file,
    lint_genlib_source,
    lint_library,
    pattern_truth_table,
)
from repro.check.netlist_lint import (
    lint_blif_file,
    lint_blif_source,
    lint_network,
    lint_subject,
)

__all__ = [
    "CODES",
    "CheckReport",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "SourceLoc",
    "certify_mapping",
    "certify_patch",
    "lint_blif_file",
    "lint_blif_source",
    "lint_genlib_file",
    "lint_genlib_source",
    "lint_library",
    "lint_network",
    "lint_subject",
    "pattern_truth_table",
]
