"""Mapping certificate checker: independent verification of a mapping run.

A :class:`~repro.core.result.MappingResult` carries everything needed to
*re-derive* the claims a mapper makes: the labeling (per-node arrivals
and selected matches), the mapped netlist, and the reported delay/area.
:func:`certify_mapping` replays the cover construction from the labels
and checks, with code from outside the mapper's hot path:

``C001``  every primary output is driven by a covered subject node;
``C002``  every selected match is instantiated verbatim in the netlist
          (right cell, right leaf signals in pin order);
``C003``  every selected match satisfies its match-class definition
          (Definitions 1-3, via :func:`repro.core.match.verify_match` —
          individual violations are also reported under their own
          ``C101``-``C106`` codes);
``C004``  arrival labels are self-consistent: at every covered node the
          stored arrival equals the selected match's cost over its leaf
          arrivals, and PO arrivals equal their drivers';
``C005``  the mapped netlist is functionally equivalent to the subject
          graph (exhaustive up to ``exhaustive_limit`` inputs, seeded
          random beyond);
``C006``  the reported delay equals the labeling bound (worst PO
          arrival), and — when a pattern set is supplied — an
          independent cache-free relabeling reproduces it;
``C007``  the netlist is structurally sound (``netlist.check()``);
``C008``  a node reached by the cover walk has a selected match;
``C009``  (warning) the reported area equals the netlist's cell-area sum;
``C010``  (warning) the netlist contains no gates outside the cover.

The checker never raises on a bad mapping — every finding becomes a
diagnostic — so the same pass serves the CLI, the test-suite mutation
oracle, and the opt-in ``check=`` hook in the mappers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence, Set

from repro.check.diagnostics import CheckReport
from repro.core.cover import signal_name
from repro.core.match import Match, MatchKind, subject_uses, verify_match
from repro.core.result import MappingResult
from repro.errors import CertificateError, MappingError, NetworkError
from repro.library.patterns import PatternSet
from repro.network.bitsim import configured_seed, configured_vectors
from repro.network.simulate import exhaustive_equivalence, random_equivalence

__all__ = ["certify_mapping", "attach_certificate"]

#: Above this many primary inputs, equivalence checking samples random
#: vectors instead of enumerating the whole input space.
DEFAULT_EXHAUSTIVE_LIMIT = 12

_TOL = 1e-6


def _match_cost(match: Match, arrival: Sequence[float]) -> float:
    """Arrival implied by a match: max over leaves of leaf arrival + pin delay."""
    gate = match.gate
    return max(
        (
            arrival[leaf.uid] + gate.pin_delay(pin)
            for pin, leaf in match.leaves()
        ),
        default=0.0,
    )


def certify_mapping(
    result: MappingResult,
    selection: Optional[Dict[int, Match]] = None,
    patterns: Optional[PatternSet] = None,
    vectors: Optional[int] = None,
    seed: Optional[int] = None,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    target: Optional[float] = None,
) -> CheckReport:
    """Certify one mapping run; every finding becomes a coded diagnostic.

    The equivalence stage (``C005``) runs on the bit-parallel kernel:
    one packed pass per circuit, exhaustive up to ``exhaustive_limit``
    primary inputs and a seeded random batch beyond.  The batch width
    and seed resolve explicit arguments > ``REPRO_SIM_VECTORS`` /
    ``REPRO_SIM_SEED`` environment > defaults, and are recorded in
    ``report.meta`` and on ``result.sim_vectors`` / ``result.sim_seed``
    so the run is reproducible.

    Args:
        result: the mapping run to certify.
        selection: the per-node match override that was passed to
            :func:`repro.core.cover.build_cover`, when one was (area
            recovery does this); without it the certificate replays the
            cover from ``labels.best`` alone.
        patterns: when given, an independent cache-free relabeling
            cross-checks the delay bound (slow; off by default).
        vectors: random simulation batch width past ``exhaustive_limit``
            (default: ``REPRO_SIM_VECTORS`` or 4096).
        seed: PRNG seed for the random equivalence stage (default:
            ``REPRO_SIM_SEED`` or 2024).
        exhaustive_limit: max primary inputs for exhaustive equivalence.
        target: delay budget of an *area-recovered* cover.  When set,
            the per-node arrival check (``C004``) changes meaning — the
            selection's replayed arrivals may exceed the optimal labels
            but must never beat them — and two recovered-cover checks
            run instead of the bound equality: every primary output's
            replayed arrival must meet ``target`` (``C011``) and the
            reported delay must equal the replayed cover's worst PO
            arrival (``C006``).
    """
    report = CheckReport()
    sim_vectors = configured_vectors(vectors)
    sim_seed = configured_seed(seed)
    report.meta["sim_vectors"] = sim_vectors
    report.meta["sim_seed"] = sim_seed
    result.sim_vectors = sim_vectors
    result.sim_seed = sim_seed
    labels = result.labels
    subject = labels.subject
    netlist = result.netlist
    try:
        kind = MatchKind(result.match_kind)
    except ValueError:
        kind = MatchKind.STANDARD

    # ------------------------------------------------------------------
    # C007: structural soundness of the netlist itself.
    try:
        netlist.check()
    except (MappingError, NetworkError) as exc:
        report.add("C007", str(exc), obj=netlist.name)

    # ------------------------------------------------------------------
    # Replay the cover walk from the labels (the same queue discipline as
    # build_cover, but checking instead of constructing).
    covered: Set[int] = set()
    chosen: Dict[int, Match] = {}
    uses = subject_uses(subject) if kind is MatchKind.EXACT else None
    queue = deque(driver for _, driver in subject.pos)
    while queue:
        node = queue.popleft()
        if node.is_pi or node.uid in covered:
            continue
        covered.add(node.uid)

        match = selection.get(node.uid) if selection is not None else None
        if match is None:
            match = labels.best[node.uid]
        if match is None:
            report.add(
                "C008",
                f"cover reaches subject node {node.uid} but no match is "
                f"selected there",
                obj=signal_name(node),
            )
            continue
        chosen[node.uid] = match

        # C003 (+ C101..C106): the match satisfies its class definition.
        verification = verify_match(match, subject, kind, uses=uses)
        if not verification.ok:
            report.add(
                "C003",
                f"match {match.gate.name!r} at node {node.uid} violates "
                f"{kind.value} match rules ({len(verification)} violation(s))",
                obj=signal_name(node),
            )
            for violation in verification:
                report.add(
                    violation.code,
                    f"node {node.uid}, gate {match.gate.name!r}: "
                    f"{violation.message}",
                    obj=signal_name(node),
                )

        # C002: the netlist instantiates exactly this match.
        signal = signal_name(node)
        mapped = netlist.driver(signal)
        pin_to_leaf = {pin: leaf for pin, leaf in match.leaves()}
        if mapped is None:
            report.add(
                "C002",
                f"selected match {match.gate.name!r} at node {node.uid} has "
                f"no gate driving {signal!r} in the netlist",
                obj=signal,
            )
        else:
            expected_inputs = tuple(
                signal_name(pin_to_leaf[pin]) for pin in match.gate.inputs
            )
            if mapped.gate.name != match.gate.name:
                report.add(
                    "C002",
                    f"netlist drives {signal!r} with cell "
                    f"{mapped.gate.name!r} but the selected match uses "
                    f"{match.gate.name!r}",
                    obj=signal,
                )
            elif tuple(mapped.inputs) != expected_inputs:
                report.add(
                    "C002",
                    f"gate {mapped.gate.name!r} at {signal!r} reads "
                    f"{list(mapped.inputs)} but the selected match binds "
                    f"{list(expected_inputs)}",
                    obj=signal,
                )

        # C004: arrival self-consistency at this node (delay objective).
        # Recovered covers (target set) intentionally pick slower
        # matches; their arrivals are replayed bottom-up after the walk.
        if labels.objective == "delay" and target is None:
            implied = _match_cost(match, labels.arrival)
            stored = labels.arrival[node.uid]
            if abs(stored - implied) > _TOL:
                report.add(
                    "C004",
                    f"node {node.uid}: stored arrival {stored:.6g} != "
                    f"{implied:.6g} implied by match {match.gate.name!r}",
                    obj=signal,
                )

        for leaf in pin_to_leaf.values():
            if not leaf.is_pi and leaf.uid not in covered:
                queue.append(leaf)

    # ------------------------------------------------------------------
    # C001: every PO driven by a covered (or PI) subject node whose
    # signal actually reaches the netlist's output list.
    netlist_pos = dict(netlist.pos)
    for po_name, driver in subject.pos:
        if not driver.is_pi and driver.uid not in covered:
            report.add(
                "C001",
                f"primary output {po_name!r} driver (node {driver.uid}) "
                f"was never covered",
                obj=po_name,
            )
        expected = signal_name(driver)
        if netlist_pos.get(po_name) != expected:
            report.add(
                "C001",
                f"primary output {po_name!r} connects to "
                f"{netlist_pos.get(po_name)!r} instead of {expected!r}",
                obj=po_name,
            )

    # C004 (PO side): reported PO arrivals match their drivers'.
    if labels.objective == "delay":
        for po_name, driver in subject.pos:
            stored = labels.po_arrival.get(po_name)
            actual = labels.arrival[driver.uid]
            if stored is None or abs(stored - actual) > _TOL:
                report.add(
                    "C004",
                    f"PO {po_name!r}: recorded arrival "
                    f"{stored if stored is None else format(stored, '.6g')} "
                    f"!= driver arrival {actual:.6g}",
                    obj=po_name,
                )

    # ------------------------------------------------------------------
    # C010: gates in the netlist that no cover step accounts for.
    cover_signals = {signal_name(subject.nodes[uid]) for uid in covered}
    for mapped in netlist.gates:
        if mapped.output not in cover_signals:
            report.add(
                "C010",
                f"gate {mapped.instance!r} ({mapped.gate.name}) drives "
                f"{mapped.output!r}, which no cover step produced",
                obj=mapped.output,
            )

    # C009: reported area vs. netlist cell-area sum.
    actual_area = netlist.area()
    if abs(result.area - actual_area) > max(_TOL, 1e-9 * abs(actual_area)):
        report.add(
            "C009",
            f"reported area {result.area:.6g} != netlist cell-area sum "
            f"{actual_area:.6g}",
            obj=netlist.name,
        )

    # ------------------------------------------------------------------
    # C006: reported delay vs. the labeling bound, and (optionally) an
    # independent relabeling with the memoization layer disabled.
    if labels.objective == "delay":
        bound = labels.max_arrival
        if target is None:
            if abs(result.delay - bound) > _TOL:
                report.add(
                    "C006",
                    f"reported delay {result.delay:.6g} != labeling bound "
                    f"{bound:.6g}",
                    obj=netlist.name,
                )
        else:
            # Recovered cover: replay the selection's arrivals bottom-up
            # (uids are topological).  Each node may be slower than its
            # optimal label but never faster (C004), every PO must meet
            # the delay target (C011), and the reported delay must equal
            # the replayed worst PO arrival (C006).
            sel_arrival: Dict[int, float] = {}
            for uid in sorted(chosen):
                sel_match = chosen[uid]
                sel_gate = sel_match.gate
                worst = 0.0
                for pin, leaf in sel_match.leaves():
                    base = (
                        labels.arrival[leaf.uid]
                        if leaf.is_pi
                        else sel_arrival.get(leaf.uid, labels.arrival[leaf.uid])
                    )
                    worst = max(worst, base + sel_gate.pin_delay(pin))
                sel_arrival[uid] = worst
                if worst < labels.arrival[uid] - _TOL:
                    report.add(
                        "C004",
                        f"node {uid}: replayed recovered arrival "
                        f"{worst:.6g} beats the optimal label "
                        f"{labels.arrival[uid]:.6g}",
                        obj=signal_name(subject.nodes[uid]),
                    )
            worst_po = 0.0
            for po_name, driver in subject.pos:
                if driver.is_pi:
                    po_t: Optional[float] = labels.arrival[driver.uid]
                else:
                    po_t = sel_arrival.get(driver.uid)
                if po_t is None:
                    continue  # C001 already reported the uncovered PO
                worst_po = max(worst_po, po_t)
                if po_t > target + _TOL:
                    report.add(
                        "C011",
                        f"PO {po_name!r}: replayed arrival {po_t:.6g} "
                        f"exceeds the delay target {target:.6g}",
                        obj=po_name,
                    )
            if abs(result.delay - worst_po) > _TOL:
                report.add(
                    "C006",
                    f"reported delay {result.delay:.6g} != replayed "
                    f"recovered-cover delay {worst_po:.6g}",
                    obj=netlist.name,
                )
        if patterns is not None:
            from repro.core.labeling import compute_labels

            independent = compute_labels(
                subject, patterns, kind=kind, cache=False
            )
            if abs(independent.max_arrival - bound) > _TOL:
                report.add(
                    "C006",
                    f"independent relabeling gives bound "
                    f"{independent.max_arrival:.6g}, run recorded "
                    f"{bound:.6g}",
                    obj=netlist.name,
                )

    # ------------------------------------------------------------------
    # C005: functional equivalence subject vs. netlist.  Skip when the
    # netlist is structurally broken — simulation would raise.
    if not report.by_code("C007"):
        try:
            if len(subject.pis) <= exhaustive_limit:
                cex = exhaustive_equivalence(subject, netlist)
                how = "exhaustive"
            else:
                cex = random_equivalence(
                    subject, netlist, vectors=sim_vectors, seed=sim_seed
                )
                how = f"random ({sim_vectors} vectors, seed {sim_seed})"
            report.meta["equivalence"] = how
            if cex is not None:
                report.add(
                    "C005",
                    f"netlist differs from subject ({how}): {cex}",
                    obj=netlist.name,
                )
        except NetworkError as exc:
            report.add("C005", f"equivalence check failed: {exc}", obj=netlist.name)

    return report


def attach_certificate(
    result: MappingResult, raise_on_error: bool = True, **kwargs: object
) -> CheckReport:
    """Certify ``result`` in place: the mappers' ``check=True`` hook.

    Stores the report on ``result.certificate`` and, by default, raises
    :class:`~repro.errors.CertificateError` when it contains any
    error-severity diagnostic.
    """
    report = certify_mapping(result, **kwargs)  # type: ignore[arg-type]
    result.certificate = report
    if raise_on_error and report.has_errors:
        raise CertificateError(
            f"mapping certificate for {result.netlist.name!r} failed "
            f"({report.summary()}):\n{report.format()}"
        )
    return report
