"""Source-level static analysis: determinism and worker-safety lints.

The data linters of :mod:`repro.check` guard what the mapper *consumes*
(netlists, libraries, certificates); this package guards the *code
itself* — the coding rules that make the repository's byte-identical
determinism promises (journal ``--resume`` replay, engine equality,
corpus replay) actually hold.  Every finding is a coded
:class:`~repro.check.diagnostics.Diagnostic` (``S###`` codes,
catalogued in ``docs/CHECKING.md``) with a real
:class:`~repro.errors.SourceLoc` into the offending file:

* ``S1##`` determinism: unseeded ``random.*`` calls, wall-clock time
  sources, order-sensitive iteration over unordered sets, and direct
  ``os.environ`` access outside the typed :mod:`repro.env` registry;
* ``S2##`` worker safety: unpicklable callables handed to the
  fault-tolerant pool, and writes to mutable module-level globals from
  functions reachable from the worker entry points of
  :mod:`repro.perf.parallel`;
* ``S3##`` exception hygiene: broad handlers that swallow silently and
  ``assert`` used for runtime validation.

Intentional violations are silenced inline with ``# repro:
allow[S###]`` on the flagged line; pre-existing ones can be
grandfathered in a committed ``analysis-baseline.json`` — the CI gate
fails only on *new* findings (:func:`new_findings`).
"""

from repro.check.source.analyzer import (
    ModuleInfo,
    analyze_package,
    analyze_paths,
    parse_module,
)
from repro.check.source.baseline import (
    BASELINE_SCHEMA,
    finding_key,
    load_baseline,
    new_findings,
    save_baseline,
)
from repro.check.source.suppress import suppressions_for_source

__all__ = [
    "BASELINE_SCHEMA",
    "ModuleInfo",
    "analyze_package",
    "analyze_paths",
    "finding_key",
    "load_baseline",
    "new_findings",
    "parse_module",
    "save_baseline",
    "suppressions_for_source",
]
