"""Inline suppression comments for the source linter.

A finding is silenced by putting ``# repro: allow[S###]`` on the same
line as the flagged construct (the line the diagnostic points at — for
a multi-line statement that is the line the construct *starts* on)::

    _STATE.clear()  # repro: allow[S202] per-process worker state

Several codes may share one comment, comma-separated::

    spec = os.environ.get(...)  # repro: allow[S104,S103]

Suppressions are parsed from the token stream, not the AST, so they
work on any line that holds a comment — including lines inside
multi-line calls.  An ``allow`` for a code that never fires on that
line is simply inert (the self-application test keeps the repository's
own suppressions honest).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

__all__ = ["SUPPRESS_RE", "suppressions_for_source"]

#: ``# repro: allow[S101]`` / ``# repro: allow[S101, S202]`` — anything
#: after the closing bracket is free-form justification text.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")


def suppressions_for_source(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the codes allowed on that line.

    Tokenization errors are ignored here: a file that does not tokenize
    will not parse either, and the analyzer reports that as ``S000``.
    """
    allowed: Dict[int, Set[str]] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if codes:
                allowed.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return allowed
