"""Driver for the source linter: walk files, parse, visit, report.

:func:`analyze_paths` runs every check over a list of files or
directories; :func:`analyze_package` runs them over the installed
``repro`` package itself (the self-application the CI gate uses).
Findings come back as one ordered :class:`CheckReport`: sorted by
(path, line, column, code), with inline ``# repro: allow[...]``
suppressions already applied and accounted in ``report.meta``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.diagnostics import CheckReport
from repro.check.source import determinism, exceptions, workers
from repro.check.source.model import Finding, ModuleInfo, collect_imports
from repro.check.source.suppress import suppressions_for_source
from repro.errors import SourceLoc

__all__ = ["ModuleInfo", "analyze_package", "analyze_paths", "parse_module"]


def _module_name(rel: str, root_package: Optional[str]) -> str:
    """Dotted module name for a path relative to the analyzed root."""
    parts = list(Path(rel).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if root_package:
        parts = [root_package] + parts
    return ".".join(parts) if parts else (root_package or "")


def parse_module(
    path: str,
    rel: Optional[str] = None,
    module: Optional[str] = None,
    source: Optional[str] = None,
) -> Tuple[Optional[ModuleInfo], Optional[Finding]]:
    """Parse one file into a :class:`ModuleInfo`, or an ``S000`` finding."""
    rel = rel if rel is not None else Path(path).name
    rel = rel.replace("\\", "/")
    if source is None:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return None, Finding("S000", f"cannot read source: {exc}", 1, 0)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            "S000",
            f"syntax error: {exc.msg}",
            exc.lineno or 1,
            (exc.offset or 1) - 1,
        )
    info = ModuleInfo(
        path=path,
        rel=rel,
        module=module if module is not None else _module_name(rel, None),
        tree=tree,
        source=source,
    )
    collect_imports(info)
    return info, None


def _iter_files(paths: Sequence[str]) -> Iterable[Tuple[str, str]]:
    """Yield ``(path, rel)`` for every ``.py`` under ``paths``, sorted."""
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            for path in sorted(base.rglob("*.py")):
                yield str(path), path.relative_to(base).as_posix()
        else:
            yield str(base), base.name


def analyze_paths(
    paths: Sequence[str],
    root_package: Optional[str] = None,
) -> CheckReport:
    """Run every source check over files/directories in ``paths``.

    Args:
        paths: files or directory roots; directories are walked for
            ``*.py`` in sorted order.
        root_package: dotted prefix for module-name resolution when a
            directory *is* a package (``"repro"`` for the package
            root), so the worker call graph can match entry points.
            Stable diagnostic paths get the same prefix.  When omitted
            and a single package directory (one holding
            ``__init__.py``) is given, the prefix is inferred from the
            directory name, so ``check --source src/repro`` matches the
            default package analysis.
    """
    if root_package is None and len(paths) == 1:
        base = Path(paths[0])
        if base.is_dir() and (base / "__init__.py").exists():
            root_package = base.name
    report = CheckReport()
    infos: List[ModuleInfo] = []
    per_file: Dict[str, List[Finding]] = {}
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    files = 0
    for path, rel in _iter_files(paths):
        module = _module_name(rel, root_package)
        if root_package:
            rel = f"{root_package}/{rel}"
        files += 1
        info, parse_failure = parse_module(path, rel=rel, module=module)
        if parse_failure is not None:
            per_file[rel] = [parse_failure]
            suppressions[rel] = {}
            continue
        assert info is not None
        infos.append(info)
        per_file[info.rel] = []
        suppressions[info.rel] = suppressions_for_source(info.source)

    for info in infos:
        per_file[info.rel].extend(determinism.check(info))
        per_file[info.rel].extend(exceptions.check(info))
    for rel, found in workers.check_package(infos).items():
        per_file[rel].extend(found)

    suppressed = 0
    for rel in sorted(per_file):
        allowed = suppressions.get(rel, {})
        findings = sorted(
            per_file[rel], key=lambda f: (f.line, f.column, f.code, f.message)
        )
        for finding in findings:
            if finding.code in allowed.get(finding.line, ()):
                suppressed += 1
                continue
            report.add(
                finding.code,
                finding.message,
                loc=SourceLoc(file=rel, line=finding.line,
                              column=finding.column + 1),
                obj=finding.obj,
            )
    report.meta["files"] = files
    report.meta["suppressed"] = suppressed
    return report


def analyze_package(package: str = "repro") -> CheckReport:
    """Self-application: analyze the installed ``package`` tree."""
    import importlib

    module = importlib.import_module(package)
    file = getattr(module, "__file__", None)
    if file is None:
        raise ValueError(f"package {package!r} has no source directory")
    root = Path(file).parent
    return analyze_paths([str(root)], root_package=package)
