"""Exception-hygiene lints (``S3##``).

``S301``  a handler that can swallow *anything* without handling it:
          a bare ``except:``, or an ``except Exception/BaseException``
          whose body is only ``pass``/``...``/``continue``.  Such a
          handler hides crashes, corrupted state and injected faults
          alike; either narrow the exception type, re-raise, or convert
          the failure into a structured record (a ``CellFailure`` row,
          a coded diagnostic).  Broad handlers that *use* the caught
          exception are legal — stringifying it across a process
          boundary or turning it into an ``F006`` finding is exactly
          the structured conversion this repository wants.

``S302``  an ``assert`` carrying runtime validation in non-test code.
          ``python -O`` strips asserts, so a validation assert is a
          check that silently disappears in optimized runs; raise a
          coded error instead.  *Narrowing* asserts — ``assert x is not
          None``, ``assert isinstance(x, T)``, and ``and``-conjunctions
          of those — exist for the type checker, cannot fail when the
          code is correct, and are exempt.
"""

from __future__ import annotations

import ast
from typing import List

from repro.check.source.model import Finding, ModuleInfo

__all__ = ["check"]

_BROAD = {"Exception", "BaseException"}


def _is_broad(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(el) for el in expr.elts)
    return False


def _only_swallows(body: List[ast.stmt]) -> bool:
    """True when the handler body does nothing with the failure."""
    for stmt in body:
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring or bare `...`
        return False
    return True


def _is_narrowing(test: ast.expr) -> bool:
    """``assert`` forms that exist for the type checker, not validation."""
    if isinstance(test, ast.Compare):
        return all(
            isinstance(op, (ast.Is, ast.IsNot)) for op in test.ops
        ) and any(
            isinstance(cmp, ast.Constant) and cmp.value is None
            for cmp in test.comparators
        )
    if isinstance(test, ast.Call) and isinstance(test.func, ast.Name):
        return test.func.id in ("isinstance", "callable", "hasattr")
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return all(_is_narrowing(value) for value in test.values)
    return False


def check(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                findings.append(Finding(
                    "S301",
                    "bare 'except:' catches KeyboardInterrupt and "
                    "SystemExit too; name the exception classes",
                    node.lineno, node.col_offset,
                ))
            elif _is_broad(node.type) and _only_swallows(node.body):
                caught = ast.unparse(node.type)
                findings.append(Finding(
                    "S301",
                    f"'except {caught}' swallows every failure silently; "
                    "narrow it, re-raise, or convert to a structured "
                    "failure record",
                    node.lineno, node.col_offset,
                ))
        elif isinstance(node, ast.Assert):
            if not _is_narrowing(node.test):
                findings.append(Finding(
                    "S302",
                    "assert is stripped under 'python -O'; raise a coded "
                    "error for runtime validation (narrowing asserts "
                    "like 'assert x is not None' are exempt)",
                    node.lineno, node.col_offset,
                ))
    return findings
