"""Determinism lints (``S1##``).

``S101``  a call through the *module-level* :mod:`random` API
          (``random.random()``, ``random.shuffle`` ...) or a
          ``from random import <fn>`` of anything but the ``Random``
          class.  Module-level randomness shares one hidden global
          generator across the whole process: any consumer reseeding or
          drawing from it perturbs every other consumer, so mapping and
          bench paths must thread an explicitly seeded
          ``random.Random`` instance instead.

``S102``  a wall-clock time source: ``time.time``/``time.time_ns`` or
          ``datetime.now``/``utcnow``/``today``.  Interval measurement
          belongs to ``time.perf_counter`` (monotonic; the convention
          every ``cpu_seconds``/``wall_s`` field in this repository
          already follows), and absolute timestamps do not belong in
          byte-compared outputs at all.

``S103``  order-sensitive consumption of an unordered ``set`` /
          ``frozenset`` value: iterating one in a ``for`` loop, a
          list/dict comprehension, ``list()``/``tuple()``/
          ``enumerate()``/``str.join()``/``.extend()`` — without an
          intervening ``sorted()``.  Set iteration order depends on the
          process hash state, so any such value that feeds ordered
          output, hashing or JSON breaks replay byte-comparison.
          Order-insensitive consumers (``sorted``, ``min``/``max``,
          ``sum``, ``len``, ``any``/``all``, set algebra, membership
          tests, set comprehensions) are exempt.

``S104``  direct ``os.environ`` / ``os.getenv`` access anywhere outside
          :mod:`repro.env` — the typed registry is the single
          inventory of every knob that can change behaviour.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.check.source.model import Finding, ModuleInfo

__all__ = ["check"]

#: ``random`` attributes that are fine: explicitly seeded generator
#: classes (their *construction* is the sanctioned pattern).
_RANDOM_OK = {"Random", "SystemRandom"}

#: Wall-clock attributes of the ``time`` module (``perf_counter``,
#: ``monotonic``, ``process_time`` and ``sleep`` stay legal).
_TIME_WALL = {"time", "time_ns", "ctime", "localtime", "gmtime"}

#: Wall-clock constructors of ``datetime``/``date`` objects.
_DATETIME_WALL = {"now", "utcnow", "today"}

#: Callables that consume an iterable order-sensitively.
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "iter", "next"}

#: AST nodes that produce a set value, syntactically.
_SET_NODES = (ast.Set, ast.SetComp)

#: Set-returning methods (applied to an expression already known to be
#: a set, the result is a set again).
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


def _alias_targets(info: ModuleInfo, dotted: str) -> Set[str]:
    """Local names bound to module ``dotted`` (``import x``/``as y``)."""
    return {
        local
        for local, target in info.module_aliases.items()
        if target == dotted
    }


def check(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_check_imports(info))
    findings.extend(_check_calls(info))
    if not info.is_env_module:
        findings.extend(_check_environ(info))
    findings.extend(_check_set_iteration(info))
    return findings


# ----------------------------------------------------------------------
# S101 / S102 / S104: import-site lints
# ----------------------------------------------------------------------


def _check_imports(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ImportFrom) or node.module is None:
            continue
        for alias in node.names:
            if node.module == "random" and alias.name not in _RANDOM_OK:
                findings.append(Finding(
                    "S101",
                    f"'from random import {alias.name}' binds the shared "
                    "module-level generator; seed a random.Random instance",
                    node.lineno, node.col_offset, obj=alias.name,
                ))
            elif node.module == "time" and alias.name in _TIME_WALL:
                findings.append(Finding(
                    "S102",
                    f"'from time import {alias.name}' imports a wall clock; "
                    "use time.perf_counter for intervals",
                    node.lineno, node.col_offset, obj=alias.name,
                ))
            elif node.module == "os" and alias.name in ("environ", "getenv"):
                findings.append(Finding(
                    "S104",
                    f"'from os import {alias.name}' bypasses the repro.env "
                    "registry",
                    node.lineno, node.col_offset, obj=alias.name,
                ))
    return findings


# ----------------------------------------------------------------------
# S101 / S102: call-site lints
# ----------------------------------------------------------------------


def _check_calls(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    random_aliases = _alias_targets(info, "random")
    time_aliases = _alias_targets(info, "time")
    datetime_mod_aliases = _alias_targets(info, "datetime")
    # Classes bound by `from datetime import datetime, date`.
    datetime_classes = {
        local
        for local, (mod, attr) in info.imported_names.items()
        if mod == "datetime" and attr in ("datetime", "date")
    }
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Attribute):
            continue
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in random_aliases and node.attr not in _RANDOM_OK:
                findings.append(Finding(
                    "S101",
                    f"random.{node.attr} draws from the shared module-level "
                    "generator; seed a random.Random instance",
                    node.lineno, node.col_offset, obj=f"random.{node.attr}",
                ))
            elif base.id in time_aliases and node.attr in _TIME_WALL:
                findings.append(Finding(
                    "S102",
                    f"time.{node.attr} is a wall clock; use "
                    "time.perf_counter for interval measurement",
                    node.lineno, node.col_offset, obj=f"time.{node.attr}",
                ))
            elif base.id in datetime_classes and node.attr in _DATETIME_WALL:
                findings.append(Finding(
                    "S102",
                    f"datetime {node.attr}() reads the wall clock; "
                    "timestamps do not belong in deterministic outputs",
                    node.lineno, node.col_offset, obj=node.attr,
                ))
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in datetime_mod_aliases
            and base.attr in ("datetime", "date")
            and node.attr in _DATETIME_WALL
        ):
            findings.append(Finding(
                "S102",
                f"datetime.{base.attr}.{node.attr}() reads the wall clock; "
                "timestamps do not belong in deterministic outputs",
                node.lineno, node.col_offset,
                obj=f"datetime.{base.attr}.{node.attr}",
            ))
    return findings


# ----------------------------------------------------------------------
# S104: os.environ access
# ----------------------------------------------------------------------


def _check_environ(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    os_aliases = _alias_targets(info, "os")
    for node in ast.walk(info.tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in os_aliases
            and node.attr in ("environ", "getenv", "putenv", "unsetenv")
        ):
            findings.append(Finding(
                "S104",
                f"direct os.{node.attr} access; read configuration through "
                "the typed repro.env registry",
                node.lineno, node.col_offset, obj=f"os.{node.attr}",
            ))
    return findings


# ----------------------------------------------------------------------
# S103: order-sensitive set iteration
# ----------------------------------------------------------------------

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _check_set_iteration(info: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for scope, body in _scopes(info.tree):
        findings.extend(_scan_scope(scope, body))
    return findings


def _scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, statements)`` for the module and every
    function, outermost first."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _scan_scope(scope: _Scope, body: List[ast.stmt]) -> List[Finding]:
    """One scope: infer set-typed locals in statement order, then flag
    order-sensitive consumption of set values."""
    findings: List[Finding] = []
    set_vars: Set[str] = set()
    scope_name = getattr(scope, "name", "<module>")

    def is_set_expr(node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, _SET_NODES):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_vars
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return is_set_expr(node.left) or is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return is_set_expr(node.body) and is_set_expr(node.orelse)
        return False

    def flag(node: ast.expr, how: str) -> None:
        findings.append(Finding(
            "S103",
            f"{how} iterates a set in hash order; wrap it in sorted() "
            "(or consume it order-insensitively)",
            node.lineno, node.col_offset, obj=scope_name,
        ))

    def visit(node: ast.AST) -> None:
        # Stop at nested function scopes; they are scanned separately
        # (their closed-over set vars are lost — an accepted gap).
        if node is not scope and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        if isinstance(node, ast.Assign):
            visit(node.value)
            produced = is_set_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if produced:
                        set_vars.add(target.id)
                    else:
                        set_vars.discard(target.id)
                else:
                    visit(target)
            return
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                visit(node.value)
            if is_set_expr(node.value):
                set_vars.add(node.target.id)
            else:
                set_vars.discard(node.target.id)
            return
        if isinstance(node, ast.For):
            if is_set_expr(node.iter):
                flag(node.iter, "for loop")
            for child in ast.iter_child_nodes(node):
                visit(child)
            return
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if is_set_expr(gen.iter):
                    flag(gen.iter, "comprehension")
            for child in ast.iter_child_nodes(node):
                visit(child)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDERED_CONSUMERS
                and node.args
                and is_set_expr(node.args[0])
            ):
                flag(node.args[0], f"{func.id}()")
            elif isinstance(func, ast.Attribute) and node.args:
                if func.attr == "join" and is_set_expr(node.args[0]):
                    flag(node.args[0], "str.join()")
                elif func.attr == "extend" and is_set_expr(node.args[0]):
                    flag(node.args[0], ".extend()")
            for child in ast.iter_child_nodes(node):
                visit(child)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in body:
        visit(stmt)
    return findings
