"""Multiprocessing worker-safety lints (``S2##``).

``S201``  an unpicklable callable handed to a process-dispatch point:
          a ``lambda``, a function nested inside another function (a
          closure), or a bound instance attribute (``self.method``)
          passed as the ``setup`` of
          :func:`repro.perf.parallel.run_tasks_parallel`, the
          ``target=`` of a ``Process``, or the callable of a
          ``pool.map``-family call.  Only module-level callables
          survive pickling into a spawned worker — a closure happens to
          work under the fork start method and then breaks on platforms
          that spawn, which is exactly the class of latent bug a
          static check must catch.

``S202``  a write to a *mutable module-level global* from a function
          reachable from the worker entry points of
          :mod:`repro.perf.parallel`.  Worker-side writes to module
          state fork-diverge silently: each process mutates its own
          copy, the parent never sees it, and the same code running on
          the serial path *does* mutate the shared module — the
          serial/parallel byte-equality the suite runner promises then
          depends on nobody reading that state.  Reachability is a
          best-effort static call graph: module-level functions only,
          names resolved through each module's imports, walked from
          ``_worker_main``/``_init_worker``/``_run_task`` and from
          every callable passed as a ``setup``/``target`` at a
          dispatch point.  Intentional per-process state (the worker's
          own ``_STATE``, process-local counters that are explicitly
          merged) carries an inline ``# repro: allow[S202]`` with its
          justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.source.model import (
    Finding,
    ModuleInfo,
    local_bindings,
    root_name,
)

__all__ = ["check_package", "ENTRY_POINTS"]

#: Hard-coded worker entry points (module-qualified); dispatch-point
#: ``setup=``/``target=`` arguments found in the tree are added to
#: these at analysis time.
ENTRY_POINTS: Tuple[str, ...] = (
    "repro.perf.parallel._worker_main",
    "repro.perf.parallel._init_worker",
    "repro.perf.parallel._run_task",
    "repro.perf.parallel._suite_bundle_factory",
    "repro.perf.parallel._task_bundle_factory",
    "repro.perf.campaign._mapping_bundle_factory",
)

#: Methods that mutate their receiver in place.
_MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "remove", "setdefault", "update",
}

#: ``pool.<method>`` names whose first argument crosses into workers.
_POOL_METHODS = {"map", "imap", "imap_unordered", "starmap", "apply_async"}


@dataclass
class _FunctionRecord:
    """Static summary of one module-level function."""

    qualname: str
    node: ast.AST
    calls: Set[str] = field(default_factory=set)
    writes: List[Tuple[str, str, int, int]] = field(default_factory=list)
    # (global name, description, line, col)


def _is_immutable_value(node: Optional[ast.expr]) -> bool:
    """Conservative: literals and tuples/frozensets of literals only."""
    if node is None:
        return True
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_immutable_value(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_immutable_value(node.left) and _is_immutable_value(node.right)
    if isinstance(node, ast.Tuple):
        return all(_is_immutable_value(el) for el in node.elts)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("frozenset", "tuple") and all(
            _is_immutable_value(arg) for arg in node.args
        )
    if isinstance(node, (ast.Name, ast.Attribute, ast.Lambda)):
        return True  # aliases and callables: rebinding is what matters
    return False


def _mutable_globals(info: ModuleInfo) -> Set[str]:
    names: Set[str] = set()
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign):
            value: Optional[ast.expr] = stmt.value
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            value = stmt.value
            targets = [stmt.target]
        else:
            continue
        if not _is_immutable_value(value):
            names.update(t.id for t in targets)
    return names


def _resolve(info: ModuleInfo, func: ast.expr,
             local_functions: Set[str]) -> Optional[str]:
    """Resolve a callable expression to a dotted target, best effort."""
    if isinstance(func, ast.Name):
        if func.id in local_functions:
            return f"{info.module}.{func.id}"
        imported = info.imported_names.get(func.id)
        if imported is not None:
            return f"{imported[0]}.{imported[1]}"
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        target = info.module_aliases.get(func.value.id)
        if target is not None:
            return f"{target}.{func.attr}"
    return None


def check_package(
    infos: Sequence[ModuleInfo],
) -> Dict[str, List[Finding]]:
    """Run both worker-safety lints over the whole analyzed tree.

    Returns findings grouped by each module's ``rel`` path (the
    package-wide call graph means a finding in one file can be caused
    by a dispatch point in another).
    """
    functions: Dict[str, _FunctionRecord] = {}
    findings_by_module: Dict[str, List[Finding]] = {
        info.rel: [] for info in infos
    }
    entrypoints: Set[str] = set(ENTRY_POINTS)

    for info in infos:
        _scan_module(info, functions, entrypoints, findings_by_module[info.rel])

    reachable = _walk(functions, entrypoints)
    for qualname in sorted(reachable):
        record = functions.get(qualname)
        if record is None:
            continue
        for name, how, line, col in record.writes:
            rel = _module_rel(infos, qualname)
            if rel is None:
                continue
            findings_by_module[rel].append(Finding(
                "S202",
                f"{how} mutates module-level {name!r} in a function "
                "reachable from the worker entry points; worker copies "
                "fork-diverge from the parent silently",
                line, col, obj=qualname.rsplit(".", 1)[-1],
            ))
    return findings_by_module


def _module_rel(infos: Sequence[ModuleInfo], qualname: str) -> Optional[str]:
    module = qualname.rsplit(".", 1)[0]
    for info in infos:
        if info.module == module:
            return info.rel
    return None


def _walk(functions: Dict[str, _FunctionRecord],
          entrypoints: Set[str]) -> Set[str]:
    seen: Set[str] = set()
    frontier = [name for name in sorted(entrypoints) if name in functions]
    while frontier:
        qualname = frontier.pop()
        if qualname in seen:
            continue
        seen.add(qualname)
        record = functions[qualname]
        for callee in sorted(record.calls):
            if callee in functions and callee not in seen:
                frontier.append(callee)
    return seen


def _scan_module(
    info: ModuleInfo,
    functions: Dict[str, _FunctionRecord],
    entrypoints: Set[str],
    findings: List[Finding],
) -> None:
    mutable = _mutable_globals(info)
    local_functions = {
        stmt.name
        for stmt in info.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    local_classes = {
        stmt.name for stmt in info.tree.body if isinstance(stmt, ast.ClassDef)
    }

    def classify_callable(expr: ast.expr,
                          enclosing: List[ast.AST]) -> Optional[str]:
        """A human-readable problem description, or None when safe."""
        if isinstance(expr, ast.Lambda):
            return "a lambda cannot be pickled into a spawned worker"
        if isinstance(expr, ast.Name):
            for func in enclosing:
                nested = {
                    sub.name
                    for sub in ast.walk(func)
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub is not func
                }
                if expr.id in nested:
                    return (
                        f"nested function {expr.id!r} is a closure; only "
                        "module-level callables are picklable"
                    )
            return None
        if isinstance(expr, ast.Attribute):
            root = root_name(expr)
            if root is None:
                return "a computed callable cannot be verified picklable"
            if root in info.module_aliases or root in local_classes:
                return None
            return (
                f"bound attribute {ast.unparse(expr)!r} is not a "
                "module-level callable; it will not pickle into a "
                "spawned worker"
            )
        return None

    def dispatch_callable(node: ast.Call) -> Optional[ast.expr]:
        """The callable argument of a dispatch point, if this is one."""
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "run_tasks_parallel":
            for kw in node.keywords:
                if kw.arg == "setup":
                    return kw.value
            return node.args[0] if node.args else None
        if name == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    return kw.value
            return None
        if (
            isinstance(func, ast.Attribute)
            and name in _POOL_METHODS
            and node.args
        ):
            return node.args[0]
        return None

    def scan(node: ast.AST, record: Optional[_FunctionRecord],
             enclosing: List[ast.AST]) -> None:
        if isinstance(node, ast.Call):
            callable_arg = dispatch_callable(node)
            if callable_arg is not None:
                problem = classify_callable(callable_arg, enclosing)
                if problem is not None:
                    findings.append(Finding(
                        "S201", problem,
                        callable_arg.lineno, callable_arg.col_offset,
                    ))
                else:
                    resolved = _resolve(info, callable_arg, local_functions)
                    if resolved is not None:
                        entrypoints.add(resolved)
            if record is not None:
                resolved = _resolve(info, node.func, local_functions)
                if resolved is not None:
                    record.calls.add(resolved)
                # A mutator method on a module global is a write.
                if isinstance(node.func, ast.Attribute):
                    root = root_name(node.func)
                    if (
                        root in mutable
                        and node.func.attr in _MUTATORS
                        and root not in local_bindings(record.node)
                    ):
                        record.writes.append((
                            root, f".{node.func.attr}()",
                            node.lineno, node.col_offset,
                        ))
        elif record is not None and isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = root_name(target)
                    if (
                        root in mutable
                        and root not in local_bindings(record.node)
                    ):
                        record.writes.append((
                            root, "assignment",
                            target.lineno, target.col_offset,
                        ))
        elif record is not None and isinstance(node, ast.Global):
            declared = set(node.names)
            for sub in ast.walk(record.node):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    subtargets = (
                        sub.targets if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    for target in subtargets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in declared
                        ):
                            record.writes.append((
                                target.id, "global rebinding",
                                target.lineno, target.col_offset,
                            ))
        next_enclosing = enclosing
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            next_enclosing = enclosing + [node]
        for child in ast.iter_child_nodes(node):
            scan(child, record, next_enclosing)

    # Module-level statements outside any function (dispatch points can
    # appear there too; writes there run at import time and are fine).
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record = _FunctionRecord(f"{info.module}.{stmt.name}", stmt)
            functions[record.qualname] = record
            scan(stmt, record, [stmt])
        else:
            scan(stmt, None, [])
