"""Shared data model for the source-analysis visitors.

Every check module consumes :class:`ModuleInfo` — one parsed source
file plus the import-resolution maps the visitors share — and produces
plain :class:`Finding` records; the analyzer turns those into coded
:class:`~repro.check.diagnostics.Diagnostic` entries after applying
inline suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "collect_imports",
    "local_bindings",
    "root_name",
]


@dataclass(frozen=True)
class Finding:
    """One raw occurrence of a source lint, before suppression."""

    code: str
    message: str
    line: int
    column: int
    obj: Optional[str] = None


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed tree.

    Attributes:
        path: the path the file was read from (used for display).
        rel: forward-slash path relative to the analyzed root, used as
            the stable location in diagnostics and baseline keys.
        module: dotted module name (``repro.perf.parallel``) when the
            file sits inside the ``repro`` package, else the stem.
        tree: the parsed AST.
        source: the file's text (suppression comments come from here).
        module_aliases: local name -> dotted module it is bound to
            (``import repro.env as env`` => ``{"env": "repro.env"}``).
        imported_names: local name -> ``(module, attr)`` for
            ``from module import attr [as name]`` bindings, including
            imports that appear inside function bodies (merged; a
            slight over-approximation that errs toward reachability).
    """

    path: str
    rel: str
    module: str
    tree: ast.Module
    source: str
    module_aliases: Dict[str, str] = field(default_factory=dict)
    imported_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def is_env_module(self) -> bool:
        """True for :mod:`repro.env` itself — the one sanctioned
        ``os.environ`` site (code ``S104``)."""
        return self.module == "repro.env"


def collect_imports(info: ModuleInfo) -> None:
    """Fill the alias maps from every import statement in the module."""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this package
            for alias in node.names:
                local = alias.asname or alias.name
                info.imported_names[local] = (node.module, alias.name)


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def local_bindings(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func``'s own scope (params, assignments,
    loop targets, with-targets, comprehension-free approximation)."""
    names: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    def bound_names(target: ast.expr) -> Set[str]:
        """Names *bound* by an assignment target.  A subscript or
        attribute store mutates an existing object — its base name is
        not a new local binding."""
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            out: Set[str] = set()
            for element in target.elts:
                out.update(bound_names(element))
            return out
        if isinstance(target, ast.Starred):
            return bound_names(target.value)
        return set()

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(bound_names(target))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            names.update(bound_names(node.target))
        elif isinstance(node, ast.For):
            names.update(bound_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            names.update(bound_names(node.optional_vars))
    return names
