"""Committed baseline of grandfathered source findings.

The CI gate is *no new findings*: the committed
``analysis-baseline.json`` records a multiset of finding keys, and a
run fails only when some key occurs more often than the baseline
allows.  Keys deliberately exclude line numbers — a baseline must
survive unrelated edits to the same file — and are built from the
stable parts of a diagnostic: code, file, enclosing symbol and
message::

    S202|repro/perf/parallel.py|_init_worker|assignment mutates ...

Shrinking the baseline (fixing a grandfathered finding) always passes;
``save_baseline`` rewrites the file from a fresh report when a
deliberate grandfathering decision is made (``repro-map check --source
--update-baseline``).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from repro.check.diagnostics import CheckReport, Diagnostic
from repro.errors import ReproError

__all__ = [
    "BASELINE_SCHEMA",
    "finding_key",
    "load_baseline",
    "new_findings",
    "save_baseline",
]

BASELINE_SCHEMA = "repro-analysis-baseline/1"


def finding_key(diag: Diagnostic) -> str:
    """The line-number-free identity of one finding."""
    where = diag.loc.file if diag.loc is not None and diag.loc.file else ""
    return "|".join((diag.code, where, diag.obj or "", diag.message))


def load_baseline(path: str) -> Counter:
    """Read a baseline file into a key -> allowed-count multiset.

    Raises:
        ReproError: the file is not a baseline of the expected schema.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read analysis baseline {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BASELINE_SCHEMA
        or not isinstance(payload.get("findings"), dict)
    ):
        raise ReproError(
            f"{path} is not a {BASELINE_SCHEMA!r} analysis baseline"
        )
    counts: Counter = Counter()
    for key, count in payload["findings"].items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise ReproError(
                f"{path}: malformed baseline entry {key!r}: {count!r}"
            )
        counts[key] = count
    return counts


def save_baseline(path: str, report: CheckReport) -> None:
    """Write every finding of ``report`` as the new baseline."""
    counts: Dict[str, int] = {}
    for diag in report:
        key = finding_key(diag)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def new_findings(report: CheckReport, baseline: Counter) -> List[Diagnostic]:
    """Findings beyond the baseline's allowance, in report order.

    For a key allowed ``n`` times, the first ``n`` occurrences (report
    order is deterministic: path, then line) are grandfathered and any
    further occurrence is new.
    """
    budget = Counter(baseline)
    out: List[Diagnostic] = []
    for diag in report:
        key = finding_key(diag)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            out.append(diag)
    return out
