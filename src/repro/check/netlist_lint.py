"""Netlist linter: structural checks over Boolean networks and subject graphs.

Unlike :meth:`BooleanNetwork.check` (which raises on the first problem),
the linter collects *every* finding as a coded diagnostic, keeps going
past errors where it safely can, and never raises on malformed input —
``lint_blif_source`` turns parse failures into ``N000`` diagnostics
carrying the file/line/token of the offending construct.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.check.diagnostics import CheckReport, SourceLoc
from repro.errors import ParseError
from repro.network.bnet import BooleanNetwork
from repro.network.subject import NodeType, SubjectGraph

__all__ = ["lint_network", "lint_subject", "lint_blif_source", "lint_blif_file"]


def _find_cycle(net: BooleanNetwork) -> Optional[List[str]]:
    """One combinational cycle as a signal path, or None."""
    sources = set(net.combinational_inputs())
    state: Dict[str, int] = {}  # 0 = on stack, 1 = done
    nodes = {node.name: node for node in net.nodes()}

    for root in nodes:
        if state.get(root) == 1:
            continue
        path: List[str] = []
        stack: List[Tuple[str, int]] = [(root, 0)]
        while stack:
            name, child_idx = stack.pop()
            if child_idx == 0:
                if state.get(name) == 1 or name in sources or name not in nodes:
                    continue
                if state.get(name) == 0:
                    return path[path.index(name):] + [name]
                state[name] = 0
                path.append(name)
            node = nodes[name]
            if child_idx < len(node.fanins):
                stack.append((name, child_idx + 1))
                fanin = node.fanins[child_idx]
                if state.get(fanin) == 0:
                    return path[path.index(fanin):] + [fanin]
                if state.get(fanin) != 1 and fanin in nodes:
                    stack.append((fanin, 0))
            else:
                state[name] = 1
                path.pop()
    return None


def _latch_only_cycle(net: BooleanNetwork) -> Optional[List[str]]:
    """A feedback ring made of latches alone (no logic in the loop)."""
    by_output = {latch.output: latch for latch in net.latches}
    state: Dict[str, int] = {}
    for start in by_output:
        if state.get(start) == 1:
            continue
        path: List[str] = []
        name: Optional[str] = start
        while name is not None and name in by_output:
            if state.get(name) == 1:
                break
            if state.get(name) == 0:
                return path[path.index(name):] + [name]
            state[name] = 0
            path.append(name)
            name = by_output[name].input if by_output[name].input in by_output else None
        for visited in path:
            state[visited] = 1
    return None


def lint_network(net: BooleanNetwork) -> CheckReport:
    """Run every N-series lint over a :class:`BooleanNetwork`."""
    report = CheckReport()

    # N002: dangling fanin references.
    for node in net.nodes():
        for fanin in node.fanins:
            if not net.has_signal(fanin):
                report.add(
                    "N002",
                    f"node {node.name!r} reads undefined signal {fanin!r}",
                    obj=node.name,
                )

    # N003 / N005: primary outputs.
    seen_pos: Set[str] = set()
    for po in net.pos:
        if not net.has_signal(po):
            report.add("N003", f"primary output {po!r} is undefined", obj=po)
        if po in seen_pos:
            report.add("N005", f"primary output {po!r} declared twice", obj=po)
        seen_pos.add(po)

    # N006: latch inputs.
    for latch in net.latches:
        if not net.has_signal(latch.input):
            report.add(
                "N006",
                f"latch {latch.output!r} reads undefined signal {latch.input!r}",
                obj=latch.output,
            )

    # N001: combinational cycles (only meaningful once references resolve).
    cycle = _find_cycle(net)
    if cycle is not None:
        report.add(
            "N001",
            "combinational cycle: " + " -> ".join(cycle),
            obj=cycle[0],
        )

    # N009: latch rings with no logic inside.
    ring = _latch_only_cycle(net)
    if ring is not None:
        report.add(
            "N009",
            "latch-only feedback loop: " + " -> ".join(ring),
            obj=ring[0],
        )

    # N004: nodes outside every output cone (needs resolvable references).
    if not report.has_errors:
        reachable: Set[str] = set()
        stack = [s for s in net.combinational_outputs() if net.has_signal(s)]
        node_names = {node.name for node in net.nodes()}
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            if name in node_names:
                stack.extend(net.node(name).fanins)
        for node in net.nodes():
            if node.name not in reachable:
                report.add(
                    "N004",
                    f"node {node.name!r} drives no primary output or latch",
                    obj=node.name,
                )

    # N007 / N008: per-node function sanity.
    for node in net.nodes():
        for index, fanin in enumerate(node.fanins):
            if not node.tt.depends_on(index):
                report.add(
                    "N007",
                    f"node {node.name!r} ignores fanin {fanin!r}",
                    obj=node.name,
                )
        if node.fanins and node.tt.is_constant():
            value = 1 if node.tt.is_const1() else 0
            report.add(
                "N008",
                f"node {node.name!r} computes constant {value} "
                f"despite having {len(node.fanins)} fanins",
                obj=node.name,
            )

    return report


def lint_subject(subject: SubjectGraph) -> CheckReport:
    """Run the subject-graph N-series lints (N020-N024)."""
    report = CheckReport()
    nodes = subject.nodes

    # N021: uid density and topological creation order.
    for index, node in enumerate(nodes):
        if node.uid != index:
            report.add(
                "N021",
                f"node at position {index} has uid {node.uid}",
                obj=repr(node),
            )
        for fanin in node.fanins:
            if fanin.uid >= node.uid:
                report.add(
                    "N021",
                    f"node {node.uid} reads fanin {fanin.uid} that is not "
                    f"created before it",
                    obj=repr(node),
                )

    # N020: fanout lists must mirror fanin references exactly.
    expected: Dict[int, List[int]] = {node.uid: [] for node in nodes}
    for node in nodes:
        for fanin in node.fanins:
            if fanin.uid in expected:
                expected[fanin.uid].append(node.uid)
    for node in nodes:
        actual = sorted(reader.uid for reader in node.fanouts)
        if actual != sorted(expected.get(node.uid, [])):
            report.add(
                "N020",
                f"node {node.uid}: fanout list {actual} does not match "
                f"fanin references {sorted(expected.get(node.uid, []))}",
                obj=repr(node),
            )

    # N022: PO drivers must be graph members.
    for name, driver in subject.pos:
        if driver.uid >= len(nodes) or nodes[driver.uid] is not driver:
            report.add(
                "N022",
                f"PO {name!r} driver is not a node of this graph",
                obj=name,
            )

    # N023: structural duplicates the strash should have merged.
    seen: Dict[Tuple[NodeType, Tuple[int, ...]], int] = {}
    for node in nodes:
        if node.is_pi:
            continue
        ids = tuple(f.uid for f in node.fanins)
        if node.kind is NodeType.NAND2:
            ids = tuple(sorted(ids))
        key = (node.kind, ids)
        if key in seen:
            report.add(
                "N023",
                f"node {node.uid} duplicates node {seen[key]} "
                f"({node.kind.value} over fanins {list(ids)})",
                obj=repr(node),
            )
        else:
            seen[key] = node.uid

    # N024: internal nodes outside every PO cone.
    if not report.has_errors:
        reachable: Set[int] = set()
        stack = [driver for _, driver in subject.pos]
        while stack:
            node = stack.pop()
            if node.uid in reachable:
                continue
            reachable.add(node.uid)
            stack.extend(node.fanins)
        for node in nodes:
            if not node.is_pi and node.uid not in reachable:
                report.add(
                    "N024",
                    f"node {node.uid} feeds no primary output",
                    obj=repr(node),
                )

    return report


def lint_blif_source(
    text: str, filename: Optional[str] = None
) -> Tuple[CheckReport, Optional[BooleanNetwork]]:
    """Parse BLIF text and lint it; parse failures become ``N000``.

    Returns the report and the parsed network (None when parsing failed).
    """
    from repro.network.blif import loads_blif

    report = CheckReport()
    try:
        net = loads_blif(text, name_hint=filename or "blif", filename=filename)
    except ParseError as exc:
        report.add(
            "N000",
            exc.bare_message + (f" (near {exc.token!r})" if exc.token else ""),
            loc=SourceLoc(file=exc.file or filename, line=exc.line),
        )
        return report, None
    report.extend(lint_network(net))
    return report, net


def lint_blif_file(path: str) -> Tuple[CheckReport, Optional[BooleanNetwork]]:
    """Read and lint a BLIF file from disk (parse failures become ``N000``)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return lint_blif_source(text, filename=path)
