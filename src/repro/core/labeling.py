"""Optimal-delay labeling of subject graphs (the paper's Section 3.1).

This is the FlowMap labeling idea transplanted to library matching: visit
subject nodes in topological order; at each node enumerate all matches
rooted there and record the best achievable arrival time::

    label(n) = min over matches m at n of
               max over leaves l of m of (label(l) + pin_delay(m, l))

Primary inputs carry user-provided arrival times (default 0).  The actual
pin-to-pin delays of the matched gate replace FlowMap's unit LUT delay.
The principle of optimality holds because every cover of n must present
the inputs of *some* match of n at its leaves (the paper's argument), so
``label(n)`` is the minimum delay of any cover of ``n`` — with respect to
the match class in use:

* ``MatchKind.STANDARD`` / ``EXTENDED`` -> DAG covering (the paper),
* ``MatchKind.EXACT``    -> conventional tree covering (the baseline),
  since exact matches are precisely the matches usable inside trees.

A secondary *area-flow* label is computed in the same pass; it estimates
the duplication-aware area of the best cover and is used by area recovery
and by the area-objective tree mapper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import MappingError
from repro.core.match import Match, Matcher, MatchKind
from repro.library.patterns import PatternSet
from repro.network.subject import SubjectGraph, SubjectNode

__all__ = ["Labels", "ReuseHook", "compute_labels"]

_EPS = 1e-9

#: Signature of the ECO reuse hook: given an internal subject node, return
#: ``(arrival, area_flow, match)`` to splice a previous run's label in, or
#: ``None`` to run ordinary matching at that node.
ReuseHook = Callable[[SubjectNode], Optional[Tuple[float, float, Match]]]


@dataclass
class Labels:
    """Result of the labeling pass.

    Attributes:
        arrival: per-node optimal arrival time (indexed by node uid).
        best: per-node best match (None for PIs).
        matches_per_node: all matches found, kept only when requested.
        po_arrival: PO name -> arrival of its driver.
        n_matches: total number of matches enumerated (work measure).
        objective: 'delay' or 'area'.
    """

    subject: SubjectGraph
    arrival: List[float]
    best: List[Optional[Match]]
    po_arrival: Dict[str, float]
    n_matches: int
    objective: str
    area_flow: List[float]
    matches_per_node: Optional[List[List[Match]]] = None
    match_stats: Optional[Dict[str, float]] = None

    @property
    def max_arrival(self) -> float:
        """The optimal delay of the circuit: worst PO arrival.

        Raises:
            MappingError: (code ``M002``) when the subject has no primary
                outputs — the delay bound is undefined, and silently
                reporting 0.0 would let a broken subject graph certify.
        """
        if not self.po_arrival:
            raise MappingError(
                "[M002] subject graph has no primary outputs; the delay "
                "bound (worst PO arrival) is undefined"
            )
        return max(self.po_arrival.values())

    def match_at(self, node: SubjectNode) -> Optional[Match]:
        return self.best[node.uid]


def compute_labels(
    subject: SubjectGraph,
    patterns: PatternSet,
    kind: MatchKind = MatchKind.STANDARD,
    arrival_times: Optional[Dict[str, float]] = None,
    objective: str = "delay",
    keep_matches: bool = False,
    boundary_uids: Optional[Set[int]] = None,
    cache: bool = True,
    matcher: Optional[Matcher] = None,
    engine: str = "structural",
    reuse: Optional[ReuseHook] = None,
) -> Labels:
    """Label every subject node with its optimal cost and best match.

    Args:
        subject: the NAND2-INV subject graph.
        patterns: pattern set of the target library.
        kind: match class (see module docstring).
        arrival_times: optional PI arrival times by name (default 0.0).
        objective: ``'delay'`` (the paper) or ``'area'`` (Keutzer-style
            minimum-area covering; exact for trees, a load-estimate
            heuristic for DAGs).
        keep_matches: retain the full match list per node (memory-heavy;
            used by area recovery and the tests).
        boundary_uids: for the area objective, subject uids whose area is
            accounted elsewhere (tree leaves); their label contributes 0
            to covering matches.
        cache: enable the :mod:`repro.perf` layer (signature memoization
            and pattern-trie sharing).  ``False`` runs the seed reference
            path; both produce identical labels.
        matcher: reuse a pre-built matcher (its signature cache is
            subject-independent, so sharing one across circuits amortises
            both the trie construction and the memoized match sets).
            Must have been constructed with the same patterns and kind.
        engine: candidate-pattern engine when ``matcher`` is ``None`` —
            ``'structural'`` (try every pattern) or ``'cuts'`` (the
            NPN-table cut filter of :class:`~repro.core.match.Matcher`).
            Both produce identical labels; ``'cuts'`` rejects EXTENDED.
        reuse: optional ECO splice hook (:data:`ReuseHook`).  Consulted
            for every internal node *before* matching; when it returns a
            ``(arrival, area_flow, match)`` triple the node's label is
            taken verbatim and the matcher is never invoked there.  The
            caller (:func:`repro.eco.eco_remap`) guarantees the spliced
            label equals what matching would have produced.  Incompatible
            with ``keep_matches`` (reused nodes have no match list).

    Raises:
        MappingError: if some node has no match (library lacks INV/NAND2).
        ValueError: on an unknown objective, or ``reuse`` with
            ``keep_matches``.
    """
    if objective not in ("delay", "area"):
        raise ValueError(f"unknown objective {objective!r}")
    if reuse is not None and keep_matches:
        raise ValueError("reuse hook is incompatible with keep_matches")
    arrival_times = arrival_times or {}

    # A PO whose driver is not a member of the graph would silently label
    # with the list default (arrival 0.0); reject it up front with a
    # coded error (the lintable form of this defect is N022).
    n = len(subject.nodes)
    for po_name, driver in subject.pos:
        if not 0 <= driver.uid < n or subject.nodes[driver.uid] is not driver:
            raise MappingError(
                f"[M001] primary output {po_name!r} is driven by node "
                f"{driver.uid}, which is not part of the subject graph; "
                f"its arrival would silently default to 0.0 (lint code "
                f"N022 reports the same defect)"
            )

    if matcher is None:
        matcher = Matcher(patterns, kind, cache=cache, engine=engine)
    matcher.attach(subject)
    arrival: List[float] = [0.0] * n
    area_flow: List[float] = [0.0] * n
    best: List[Optional[Match]] = [None] * n
    all_matches: Optional[List[List[Match]]] = [[] for _ in range(n)] if keep_matches else None
    n_matches = 0

    # Fanout-use counts for the area-flow estimate, clamped to >= 1;
    # hoisted into Matcher.attach() so the pass reads one precomputed
    # list instead of a per-node (PIs included) subject_uses() call.
    uses = matcher.uses_floor

    for node in subject.topological():
        if node.is_pi:
            arrival[node.uid] = float(arrival_times.get(node.name, 0.0))
            area_flow[node.uid] = 0.0
            continue
        if reuse is not None:
            spliced = reuse(node)
            if spliced is not None:
                arrival[node.uid], area_flow[node.uid], best[node.uid] = spliced
                matcher.stats.eco_nodes_reused += 1
                continue
            matcher.stats.eco_nodes_remapped += 1
        matches = matcher.matches_at(node)
        n_matches += len(matches)
        if all_matches is not None:
            all_matches[node.uid] = matches
        if not matches:
            raise MappingError(
                f"no match at subject node {node!r}; the library must "
                f"contain at least an inverter and a 2-input NAND"
            )
        best_match: Optional[Match] = None
        best_cost = math.inf
        best_tie = (math.inf, math.inf)
        best_af = math.inf
        for match in matches:
            gate = match.gate
            cost = 0.0
            af = gate.area
            for pin, leaf in match.leaves():
                t = arrival[leaf.uid] + gate.pin_delay(pin)
                if t > cost:
                    cost = t
                af += area_flow[leaf.uid] / uses[leaf.uid]
            if af < best_af:
                best_af = af
            if objective == "delay":
                primary = cost
                tie = (gate.area, float(len(match.pattern.leaves)))
            else:
                primary = gate.area
                for _, leaf in match.leaves():
                    if boundary_uids is not None and leaf.uid in boundary_uids:
                        continue
                    if leaf.is_pi:
                        continue
                    primary += arrival[leaf.uid]
                tie = (cost, float(len(match.pattern.leaves)))
            if primary < best_cost - _EPS or (
                abs(primary - best_cost) <= _EPS and tie < best_tie
            ):
                best_cost = primary
                best_tie = tie
                best_match = match
        arrival[node.uid] = best_cost
        area_flow[node.uid] = best_af
        best[node.uid] = best_match

    po_arrival = {name: arrival[driver.uid] for name, driver in subject.pos}
    return Labels(
        subject=subject,
        arrival=arrival,
        best=best,
        po_arrival=po_arrival,
        n_matches=n_matches,
        objective=objective,
        area_flow=area_flow,
        matches_per_node=all_matches,
        match_stats=matcher.stats.as_dict(),
    )
