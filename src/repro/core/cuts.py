"""k-feasible cut enumeration on NAND2-INV subject graphs.

The cut-based matching engine (``Matcher(engine="cuts")``) needs, at
every subject node, the set of small *cuts* — leaf sets that separate the
node from the primary inputs — together with the packed truth table of
the cone function each cut induces.  This module provides the enumerator
and the cone evaluation; :mod:`repro.library.npn_table` canonicalises the
functions and owns the library side.

Two enumeration modes share one bottom-up merge:

* ``dominance=False`` (the engine's mode): *all* k-feasible cuts are
  kept, deduplicated by leaf set with the **minimum derivation depth**
  retained — the matching filter needs depth because a pattern truncated
  at height ``t`` can only map onto a cut derivable within ``t`` merge
  levels.  ``max_depth`` bounds the derivation depth (cuts deeper than
  any pattern are useless to the filter) and ``max_cuts`` caps the
  per-node set; a capped node and everything above it is *tainted*, which
  the consumer must treat as "any pattern may match here".
* ``dominance=True``: dominated cuts (supersets of another cut) are
  pruned exactly like the FlowMap-side enumerator
  (:func:`repro.fpga.cuts.enumerate_cuts`); the two are cross-tested
  against each other on shared subject graphs.  Dominance pruning is
  closed under merging — any merged cut derived from a dominated cut is
  itself dominated by the merge using the dominating cut — so pruning at
  every node loses no irredundant cut.

The derivation depth of a cut is 0 for the trivial cut ``{node}`` and
``1 + max`` over the fanin cuts it merges, minimised over derivations.
A cut may be derivable both shallowly and deeply; keeping the minimum is
what makes the matching filter sound (see ``repro.library.npn_table``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError
from repro.network.functions import variable_bits
from repro.network.subject import NodeType, SubjectGraph, SubjectNode

__all__ = ["CutEnumeration", "cut_function", "enumerate_cuts"]

#: A cut is the frozenset of its leaf nodes.
Cut = FrozenSet[SubjectNode]

#: Default per-node cut cap for the engine mode (beyond it: taint).
DEFAULT_MAX_CUTS = 128


@dataclass
class CutEnumeration:
    """Per-node k-feasible cuts of one subject graph.

    Attributes:
        k: the cut-size bound the enumeration ran with.
        max_depth: the derivation-depth bound (``None`` = unbounded).
        cuts: node uid -> {cut -> minimum derivation depth}.  Every
            node's trivial cut ``{node}`` is present with depth 0.
        tainted: uids whose cut set was truncated by ``max_cuts`` — or
            that depend on a truncated node — and is therefore
            incomplete.  Consumers using cuts to *exclude* possibilities
            must not exclude anything at a tainted node.
    """

    k: int
    max_depth: Optional[int]
    cuts: Dict[int, Dict[Cut, int]]
    tainted: Set[int] = field(default_factory=set)

    def at(self, node: SubjectNode) -> Dict[Cut, int]:
        """The cut set of one node (trivial cut included)."""
        return self.cuts[node.uid]

    def leaf_sets(self, node: SubjectNode) -> Set[Cut]:
        """The cuts of ``node`` as a plain set (cross-test convenience)."""
        return set(self.cuts[node.uid])


def enumerate_cuts(
    subject: SubjectGraph,
    k: int,
    max_depth: Optional[int] = None,
    max_cuts: int = DEFAULT_MAX_CUTS,
    dominance: bool = False,
) -> CutEnumeration:
    """All k-feasible cuts of every node, bottom-up.

    Args:
        subject: the NAND2-INV subject graph.
        k: cut-size bound (the engine uses the NPN table's width, <= 6).
        max_depth: drop cuts whose minimum derivation depth exceeds this
            (engine mode; ``None`` keeps everything).
        max_cuts: per-node cap.  In engine mode exceeding it truncates
            the set and taints the node; in dominance mode it caps after
            pruning, like the FlowMap enumerator's ``max_cuts``.
        dominance: prune dominated cuts (supersets of kept cuts).

    Raises:
        NetworkError: ``k < 1`` (no node has a 0-feasible cut).
    """
    if k < 1:
        raise NetworkError(f"cut size bound must be >= 1, got {k}")
    cuts: Dict[int, Dict[Cut, int]] = {}
    tainted: Set[int] = set()
    for node in subject.topological():
        trivial: Cut = frozenset((node,))
        if node.is_pi:
            cuts[node.uid] = {trivial: 0}
            continue
        taint = False
        acc: Dict[Cut, int] = {frozenset(): -1}
        for fanin in node.fanins:
            if fanin.uid in tainted:
                taint = True
            fanin_cuts = cuts[fanin.uid]
            nxt: Dict[Cut, int] = {}
            for c1, d1 in acc.items():
                for c2, d2 in fanin_cuts.items():
                    d2 += 1
                    if max_depth is not None and d2 > max_depth:
                        continue
                    merged = c1 | c2
                    if len(merged) > k:
                        continue
                    depth = d1 if d1 >= d2 else d2
                    old = nxt.get(merged)
                    if old is None or depth < old:
                        nxt[merged] = depth
            acc = nxt
        if dominance:
            acc = _prune_dominated(acc, max_cuts)
        elif len(acc) > max_cuts:
            acc = dict(list(acc.items())[:max_cuts])
            taint = True
        acc[trivial] = 0
        if taint:
            tainted.add(node.uid)
        cuts[node.uid] = acc
    return CutEnumeration(k=k, max_depth=max_depth, cuts=cuts, tainted=tainted)


def _prune_dominated(acc: Dict[Cut, int], max_cuts: int) -> Dict[Cut, int]:
    """Drop cuts that are supersets of another cut, then cap.

    Mirrors :func:`repro.fpga.cuts._merge`: scan in ascending size order
    so every potential dominator is kept before its supersets appear.
    """
    kept: Dict[Cut, int] = {}
    for cut in sorted(acc, key=len):
        if any(other <= cut for other in kept):
            continue
        kept[cut] = acc[cut]
        if len(kept) >= max_cuts:
            break
    return kept


def cut_function(root: SubjectNode, leaves: Sequence[SubjectNode]) -> int:
    """Packed truth table of the cone of ``root`` over ordered ``leaves``.

    Leaf ``i`` is variable ``i``; the result is the ``2^len(leaves)``-bit
    word of the cone function, computed by iterative evaluation over the
    cone (every path from ``root`` must reach a leaf — guaranteed for
    cuts produced by :func:`enumerate_cuts`).

    Raises:
        NetworkError: the walk escapes the leaf set (not a cut of
            ``root``, e.g. it reaches a PI that is not a leaf).
    """
    n = len(leaves)
    mask = (1 << (1 << n)) - 1
    words: Dict[int, int] = {
        leaf.uid: variable_bits(i, n) for i, leaf in enumerate(leaves)
    }
    if root.uid in words:
        return words[root.uid]
    stack: List[SubjectNode] = [root]
    while stack:
        node = stack[-1]
        if node.uid in words:
            stack.pop()
            continue
        if node.kind is NodeType.PI:
            raise NetworkError(
                f"cone walk from node {root.uid} escaped the leaf set at "
                f"PI {node.name!r}: not a cut"
            )
        pending = [f for f in node.fanins if f.uid not in words]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if node.kind is NodeType.INV:
            words[node.uid] = ~words[node.fanins[0].uid] & mask
        else:
            a, b = node.fanins
            words[node.uid] = ~(words[a.uid] & words[b.uid]) & mask
    return words[root.uid]


def cut_words(
    node: SubjectNode, cut_set: Dict[Cut, int]
) -> Dict[Tuple[Cut, int], int]:
    """Helper for tests: {(cut, depth) -> function bits} at one node.

    Leaves are ordered by uid, matching what the matching engine does.
    The trivial cut is skipped (its function is the single variable).
    """
    out: Dict[Tuple[Cut, int], int] = {}
    for cut, depth in cut_set.items():
        if len(cut) == 1 and next(iter(cut)) is node:
            continue
        order = sorted(cut, key=lambda leaf: leaf.uid)
        out[(cut, depth)] = cut_function(node, order)
    return out
