"""Conventional tree covering: the baseline the paper compares against.

Keutzer's three-step approach — (1) break the subject DAG into a forest at
multi-fanout points, (2) map each tree optimally by dynamic programming,
(3) glue — is equivalent to labeling the whole DAG with *exact* matches
(Definition 2): exact matches are precisely the matches whose interiors
stay inside one fanout-free region, so the DP never crosses a tree
boundary and every multi-fanout node presents its own mapped arrival to
its consumers.  No subject node is ever duplicated.

Both objectives from the literature are provided: minimum delay
(Rudell/Touati — used in the paper's Tables 1-3) and minimum area
(Keutzer's original), where tree leaves are cost boundaries.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Union

from repro.core.cover import build_cover
from repro.core.labeling import compute_labels
from repro.core.match import Matcher, MatchKind
from repro.core.result import MappingResult
from repro.library.gate import GateLibrary
from repro.library.patterns import PatternSet
from repro.network.subject import SubjectGraph

__all__ = ["map_tree", "tree_roots"]


def tree_roots(subject: SubjectGraph) -> Set[int]:
    """Uids of tree roots: PO drivers and multi-fanout nodes.

    These are the points where the conventional flow cuts the DAG into a
    forest of fanout-free trees.
    """
    roots = {driver.uid for _, driver in subject.pos}
    roots.update(node.uid for node in subject.multi_fanout_nodes())
    return roots


def map_tree(
    subject: SubjectGraph,
    library: Union[GateLibrary, PatternSet],
    arrival_times: Optional[Dict[str, float]] = None,
    objective: str = "delay",
    max_variants: int = 16,
    cache: bool = True,
    matcher: Optional[Matcher] = None,
    check: bool = False,
    engine: str = "structural",
) -> MappingResult:
    """Map via conventional tree covering (exact matches, no duplication).

    ``cache``/``matcher`` select and share the :mod:`repro.perf` matching
    caches exactly as in :func:`repro.core.dag_mapper.map_dag`, and
    ``check=True`` certifies the result the same way (the report lands on
    ``result.certificate``; errors raise ``CertificateError``).
    ``engine`` likewise mirrors :func:`~repro.core.dag_mapper.map_dag`
    (the cut filter is sound for the EXACT matches used here).
    """
    if isinstance(library, PatternSet):
        patterns = library
    else:
        patterns = PatternSet(library, max_variants=max_variants)
    start = time.perf_counter()
    boundary = tree_roots(subject) if objective == "area" else None
    if boundary is not None:
        boundary = set(boundary) | {pi.uid for pi in subject.pis}
    labels = compute_labels(
        subject,
        patterns,
        kind=MatchKind.EXACT,
        arrival_times=arrival_times,
        objective=objective,
        boundary_uids=boundary,
        cache=cache,
        matcher=matcher,
        engine=engine,
    )
    netlist = build_cover(labels, name=f"{subject.name}_tree")
    elapsed = time.perf_counter() - start

    from repro.timing.sta import analyze

    report = analyze(netlist, arrival_times=arrival_times)
    delay = labels.max_arrival if objective == "delay" else report.delay
    result = MappingResult(
        netlist=netlist,
        labels=labels,
        delay=delay,
        area=netlist.area(),
        cpu_seconds=elapsed,
        mode="tree",
        match_kind=MatchKind.EXACT.value,
        library=patterns.library.name,
        n_matches=labels.n_matches,
        counters=labels.match_stats,
        engine=matcher.engine if matcher is not None else engine,
    )
    if check:
        from repro.check.certificate import attach_certificate

        attach_certificate(result)
    return result
