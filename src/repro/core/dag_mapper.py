"""The paper's contribution: delay-optimal technology mapping of DAGs.

:func:`map_dag` runs the full flow of Section 3: optimal-delay labeling of
the subject DAG using standard (or extended) matches, then queue-based
cover construction with implicit node duplication.  The result is
delay-optimal with respect to the subject graph, the pattern set, and the
match class — the exact claim of the paper — in time O(s * p) where ``s``
is the subject size and ``p`` the total pattern size (Section 3.4).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

from repro.core.cover import build_cover
from repro.core.labeling import ReuseHook, compute_labels
from repro.core.match import Matcher, MatchKind
from repro.core.result import MappingResult
from repro.library.gate import GateLibrary
from repro.library.patterns import PatternSet
from repro.network.subject import SubjectGraph

__all__ = ["map_dag"]


def _as_patterns(library: Union[GateLibrary, PatternSet], max_variants: int) -> PatternSet:
    if isinstance(library, PatternSet):
        return library
    return PatternSet(library, max_variants=max_variants)


def map_dag(
    subject: SubjectGraph,
    library: Union[GateLibrary, PatternSet],
    kind: MatchKind = MatchKind.STANDARD,
    arrival_times: Optional[Dict[str, float]] = None,
    objective: str = "delay",
    max_variants: int = 16,
    cache: bool = True,
    matcher: Optional[Matcher] = None,
    check: bool = False,
    engine: str = "structural",
    reuse: Optional[ReuseHook] = None,
) -> MappingResult:
    """Map a subject DAG directly, without tree decomposition.

    Args:
        subject: NAND2-INV subject graph.
        library: gate library (or a pre-built :class:`PatternSet`, which
            amortises pattern generation across runs).
        kind: ``STANDARD`` (the paper's experiments, footnote 3) or
            ``EXTENDED`` (Definition 3, allowing subject-node unfolding).
            ``EXACT`` is legal but yields tree-covering behaviour; use
            :func:`repro.core.tree_mapper.map_tree` for the real baseline.
        arrival_times: optional PI arrival times.
        objective: ``'delay'`` (the paper) or ``'area'`` (heuristic
            area-flow covering for comparison experiments).
        max_variants: pattern-decomposition variants per gate.
        cache: enable the :mod:`repro.perf` matching caches (identical
            results; ``False`` selects the seed reference path).
        matcher: optional pre-built :class:`repro.core.match.Matcher`
            reused across circuits (amortises its signature cache).
        check: certify the result via :mod:`repro.check` before
            returning; the report is attached as ``result.certificate``
            and :class:`~repro.errors.CertificateError` is raised when
            it contains error-severity diagnostics.
        engine: candidate-pattern engine when ``matcher`` is ``None`` —
            ``'structural'`` or ``'cuts'`` (NPN-table cut filter, same
            result, rejects EXTENDED; see :class:`~repro.core.match.Matcher`).
        reuse: optional ECO splice hook forwarded to
            :func:`repro.core.labeling.compute_labels`; used by
            :func:`repro.eco.eco_remap` to retain labels of clean cones.

    Returns:
        A :class:`MappingResult`; ``result.delay`` equals the labeling's
        optimal arrival and the netlist's STA delay.
    """
    patterns = _as_patterns(library, max_variants)
    start = time.perf_counter()
    labels = compute_labels(
        subject,
        patterns,
        kind=kind,
        arrival_times=arrival_times,
        objective=objective,
        cache=cache,
        matcher=matcher,
        engine=engine,
        reuse=reuse,
    )
    netlist = build_cover(labels, name=f"{subject.name}_dag")
    elapsed = time.perf_counter() - start

    from repro.timing.sta import analyze  # local import to avoid a cycle

    report = analyze(netlist, arrival_times=arrival_times)
    delay = labels.max_arrival if objective == "delay" else report.delay
    result = MappingResult(
        netlist=netlist,
        labels=labels,
        delay=delay,
        area=netlist.area(),
        cpu_seconds=elapsed,
        mode="dag",
        match_kind=kind.value,
        library=patterns.library.name,
        n_matches=labels.n_matches,
        counters=labels.match_stats,
        engine=matcher.engine if matcher is not None else engine,
    )
    if check:
        from repro.check.certificate import attach_certificate

        attach_certificate(result)
    return result
