"""Mapped (technology-bound) netlists: instances of library gates.

The output of both mappers is a :class:`MappedNetlist`: a DAG of library
gate instances over named signals.  It supports the common simulation
protocol (``sim_inputs`` / ``sim_outputs`` / ``simulate``) so equivalence
against the source network can be checked, and it is the input to static
timing analysis (:mod:`repro.timing.sta`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import NetworkError
from repro.library.gate import Gate

if TYPE_CHECKING:  # runtime import would be circular via repro.network
    from repro.network.bnet import BooleanNetwork

__all__ = ["MappedGate", "MappedNetlist"]


class MappedGate:
    """One gate instance: ``output = gate(inputs...)`` (pin order)."""

    __slots__ = ("instance", "gate", "inputs", "output")

    def __init__(self, instance: str, gate: Gate, inputs: Sequence[str], output: str):
        if len(inputs) != gate.n_inputs:
            raise NetworkError(
                f"instance {instance!r}: {len(inputs)} connections for "
                f"{gate.n_inputs}-input gate {gate.name!r}"
            )
        self.instance = instance
        self.gate = gate
        self.inputs = tuple(inputs)
        self.output = output

    def __repr__(self) -> str:
        args = ", ".join(self.inputs)
        return f"{self.output} = {self.gate.name}({args})"


class MappedNetlist:
    """A technology-mapped netlist of library gate instances."""

    def __init__(self, name: str = "mapped"):
        self.name = name
        self.pis: List[str] = []
        #: (PO name, driving signal) pairs.
        self.pos: List[Tuple[str, str]] = []
        self.gates: List[MappedGate] = []
        self._driver: Dict[str, MappedGate] = {}
        self._pi_set: Set[str] = set()

    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> str:
        if name in self._pi_set:
            raise NetworkError(f"duplicate PI {name!r}")
        self.pis.append(name)
        self._pi_set.add(name)
        return name

    def add_gate(
        self, gate: Gate, inputs: Sequence[str], output: str, instance: Optional[str] = None
    ) -> MappedGate:
        if output in self._driver or output in self._pi_set:
            raise NetworkError(f"signal {output!r} already driven")
        instance = instance or f"g{len(self.gates)}"
        mapped = MappedGate(instance, gate, inputs, output)
        self.gates.append(mapped)
        self._driver[output] = mapped
        return mapped

    def add_po(self, name: str, signal: str) -> None:
        self.pos.append((name, signal))

    # ------------------------------------------------------------------
    def driver(self, signal: str) -> Optional[MappedGate]:
        return self._driver.get(signal)

    def is_pi(self, signal: str) -> bool:
        return signal in self._pi_set

    def topological_gates(self) -> List[MappedGate]:
        """Gate instances sorted so inputs are driven before use."""
        order: List[MappedGate] = []
        state: Dict[str, int] = {}

        def visit(signal: str) -> None:
            stack = [(signal, False)]
            while stack:
                sig, expanded = stack.pop()
                if sig in self._pi_set or state.get(sig) == 1:
                    continue
                gate = self._driver.get(sig)
                if gate is None:
                    raise NetworkError(f"undriven signal {sig!r}")
                if expanded:
                    state[sig] = 1
                    order.append(gate)
                    continue
                if state.get(sig) == 0:
                    raise NetworkError(f"combinational cycle through {sig!r}")
                state[sig] = 0
                stack.append((sig, True))
                for fanin in gate.inputs:
                    if state.get(fanin) != 1:
                        stack.append((fanin, False))
        for gate in self.gates:
            visit(gate.output)
        return order

    def fanout_counts(self) -> Dict[str, int]:
        """Signal -> number of uses (gate pins plus PO references)."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            for fanin in gate.inputs:
                counts[fanin] = counts.get(fanin, 0) + 1
        for _, signal in self.pos:
            counts[signal] = counts.get(signal, 0) + 1
        return counts

    def area(self) -> float:
        """Total cell area."""
        return sum(g.gate.area for g in self.gates)

    def gate_count(self) -> int:
        return len(self.gates)

    def gate_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for gate in self.gates:
            hist[gate.gate.name] = hist.get(gate.gate.name, 0) + 1
        return dict(sorted(hist.items()))

    def multi_fanout_signals(self) -> List[str]:
        """Signals with fanout >= 2 in the *mapped* circuit.

        The paper's Section 3.5 points out that DAG mapping creates
        fanout points that did not exist in the subject graph (and
        removes others); this accessor lets experiments observe that.
        """
        return [s for s, c in self.fanout_counts().items() if c >= 2]

    # ------------------------------------------------------------------
    # Simulation protocol (see repro.network.simulate)
    # ------------------------------------------------------------------
    def sim_inputs(self) -> List[str]:
        return list(self.pis)

    def sim_outputs(self) -> List[str]:
        return [name for name, _ in self.pos]

    def simulate(self, inputs: Dict[str, int], mask: int) -> Dict[str, int]:
        values: Dict[str, int] = {}
        for name in self.pis:
            if name not in inputs:
                raise NetworkError(f"missing input word for {name!r}")
            values[name] = inputs[name] & mask
        for gate in self.topological_gates():
            words = [values[f] for f in gate.inputs]
            values[gate.output] = gate.gate.eval_words(words, mask)
        return {name: values[signal] for name, signal in self.pos}

    def check(self) -> None:
        """Validate structural integrity."""
        self.topological_gates()
        for name, signal in self.pos:
            if signal not in self._driver and signal not in self._pi_set:
                raise NetworkError(f"PO {name!r} reads undriven signal {signal!r}")

    def stats(self) -> Dict[str, float]:
        return {
            "gates": len(self.gates),
            "area": self.area(),
            "pis": len(self.pis),
            "pos": len(self.pos),
        }

    def __repr__(self) -> str:
        return (
            f"MappedNetlist({self.name!r}, gates={len(self.gates)}, "
            f"area={self.area():g})"
        )


def mapped_to_network(netlist: MappedNetlist) -> "BooleanNetwork":
    """Convert a mapped netlist to a :class:`BooleanNetwork`.

    Gate instances become logic nodes carrying the gate's truth table, so
    the result can be written to BLIF, re-decomposed, or equivalence
    checked with the generic machinery.  PO names are preserved; when a
    PO name differs from its driving signal a buffer node is inserted.
    """
    from repro.network.bnet import BooleanNetwork
    from repro.network.functions import TruthTable

    net = BooleanNetwork(netlist.name)
    for pi in netlist.pis:
        net.add_pi(pi)
    for gate in netlist.topological_gates():
        net.add_node(gate.output, gate.gate.tt, gate.inputs)
    for name, signal in netlist.pos:
        if name == signal:
            net.add_po(name)
        elif not net.has_signal(name):
            net.add_node(name, TruthTable(1, 0b10), [signal])
            net.add_po(name)
        else:
            net.add_po(signal)
    net.check()
    return net
