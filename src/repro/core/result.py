"""Mapping result record shared by the DAG and tree mappers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.labeling import Labels
from repro.core.netlist import MappedNetlist

if TYPE_CHECKING:  # avoid a runtime repro.check <-> repro.core cycle
    from repro.check.diagnostics import CheckReport

__all__ = ["MappingResult"]


@dataclass
class MappingResult:
    """Everything an experiment needs about one mapping run.

    Attributes:
        netlist: the mapped circuit.
        labels: the labeling that produced it.
        delay: optimal arrival reported by labeling (== STA delay under
            the load-independent model; asserted by the mappers).
        area: total cell area of the netlist.
        cpu_seconds: wall-clock mapping time (labeling + cover).
        mode: 'dag' or 'tree'.
        match_kind: the match class used.
        library: library name.
        n_matches: matches enumerated during labeling (work measure).
        engine: candidate-pattern engine the matcher ran
            (``'structural'`` or ``'cuts'``; both yield identical
            delay/area — the field records which path produced this run).
        counters: per-run instrumentation from the :mod:`repro.perf`
            layer (signature-cache hits/misses, feasibility-cache hits,
            bindings enumerated); ``None`` when unavailable.
        certificate: the :class:`repro.check.CheckReport` produced when
            the mapper ran with ``check=True``; ``None`` otherwise.
        sim_vectors: random-batch width the certificate's equivalence
            stage used (``None`` until a certificate runs); recorded so
            the run is reproducible under ``REPRO_SIM_VECTORS``.
        sim_seed: PRNG seed of that stage (``None`` until a certificate
            runs); pairs with ``REPRO_SIM_SEED``.
    """

    netlist: MappedNetlist
    labels: Labels
    delay: float
    area: float
    cpu_seconds: float
    mode: str
    match_kind: str
    library: str
    n_matches: int
    engine: str = "structural"
    counters: Optional[Dict[str, float]] = None
    certificate: Optional["CheckReport"] = None
    sim_vectors: Optional[int] = None
    sim_seed: Optional[int] = None

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "mode": self.mode,
            "library": self.library,
            "delay": round(self.delay, 4),
            "area": round(self.area, 2),
            "gates": self.netlist.gate_count(),
            "cpu_s": round(self.cpu_seconds, 3),
            "matches": self.n_matches,
            "engine": self.engine,
        }
        if self.counters is not None:
            out["signature_hit_rate"] = self.counters.get("signature_hit_rate")
        return out

    def __repr__(self) -> str:
        return (
            f"MappingResult(mode={self.mode}, delay={self.delay:.3f}, "
            f"area={self.area:.1f}, gates={self.netlist.gate_count()}, "
            f"cpu={self.cpu_seconds:.3f}s)"
        )
