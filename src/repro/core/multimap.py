"""Mapping over multiple decompositions (Lehman et al., Section 4).

The paper observes that optimality holds only *with respect to one
subject graph*, chosen blindly among many decompositions, and cites
Lehman et al.'s mapping graphs — which encode many decompositions at once
— as the remedy, noting "the two techniques can be combined".

This module provides the lightweight version of that combination: map the
circuit once per decomposition style and stitch a composite netlist that
implements every primary output with its *fastest* cover.  Each output
cone comes from a single subject graph, so the result is a sound netlist
(verified by simulation) whose per-output delay is the minimum over the
decompositions — a lower bound on what a full choice-node mapping graph
could be asked to beat.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Union

from repro.core.dag_mapper import map_dag
from repro.core.match import MatchKind
from repro.core.netlist import MappedNetlist
from repro.core.result import MappingResult
from repro.errors import MappingError
from repro.library.gate import GateLibrary
from repro.library.patterns import PatternSet
from repro.network.bnet import BooleanNetwork
from repro.network.decompose import STYLES, decompose_network

__all__ = ["MultiMapResult", "map_multi_decomposition"]


@dataclass
class MultiMapResult:
    """Composite mapping over several decomposition styles."""

    netlist: MappedNetlist
    per_style: Dict[str, MappingResult]
    po_style: Dict[str, str]
    delay: float
    area: float
    cpu_seconds: float

    def improvement_over(self, style: str) -> float:
        """Relative delay gain of the composite vs a single style."""
        base = self.per_style[style].delay
        if base <= 0:
            return 0.0
        return (base - self.delay) / base

    def __repr__(self) -> str:
        styles = ", ".join(
            f"{s}={r.delay:.3f}" for s, r in self.per_style.items()
        )
        return (
            f"MultiMapResult(delay={self.delay:.3f} vs [{styles}], "
            f"area={self.area:.1f})"
        )


def map_multi_decomposition(
    net: BooleanNetwork,
    library: Union[GateLibrary, PatternSet],
    styles: Sequence[str] = STYLES,
    kind: MatchKind = MatchKind.STANDARD,
    max_variants: int = 8,
    engine: str = "structural",
) -> MultiMapResult:
    """Map under every decomposition style; stitch the best cover per PO.

    Internal signals are namespaced per style, so the composite never
    aliases nets from different subject graphs; primary inputs are shared
    and each PO is driven by the style that reached it fastest.
    """
    if not styles:
        raise MappingError("need at least one decomposition style")
    patterns = (
        library
        if isinstance(library, PatternSet)
        else PatternSet(library, max_variants=max_variants)
    )
    start = time.perf_counter()
    per_style: Dict[str, MappingResult] = {}
    po_arrivals: Dict[str, Dict[str, float]] = {}
    for style in styles:
        subject = decompose_network(net, style=style)
        result = map_dag(subject, patterns, kind=kind, engine=engine)
        per_style[style] = result
        po_arrivals[style] = dict(result.labels.po_arrival)

    po_names = net.combinational_outputs()
    po_style: Dict[str, str] = {}
    for po in po_names:
        # A style that never produced this output must not win the
        # per-PO selection: a missing arrival is +inf, not 0.0 (the
        # old default silently elected non-covering decompositions).
        po_style[po] = min(
            styles, key=lambda s: po_arrivals[s].get(po, math.inf)
        )
        if po not in po_arrivals[po_style[po]]:
            raise MappingError(
                f"[M003] no decomposition style drives primary output "
                f"{po!r} (styles tried: {', '.join(styles)})"
            )

    composite = MappedNetlist(f"{net.name}_multimap")
    for pi in net.combinational_inputs():
        composite.add_pi(pi)

    def qualified(style: str, signal: str) -> str:
        if composite.is_pi(signal):
            return signal
        return f"{style}:{signal}"

    # Emit, per style, only the gates in the cones of the POs that style
    # won, namespacing internal nets.
    needed_pos: Dict[str, List[str]] = {s: [] for s in styles}
    for po, style in po_style.items():
        needed_pos[style].append(po)
    for style in styles:
        if not needed_pos[style]:
            continue
        netlist = per_style[style].netlist
        po_signal = dict(netlist.pos)
        keep: Set[int] = set()
        stack = [po_signal[po] for po in needed_pos[style]]
        driver = {g.output: g for g in netlist.gates}
        while stack:
            signal = stack.pop()
            if signal in keep or composite.is_pi(signal):
                continue
            keep.add(signal)
            gate = driver.get(signal)
            if gate is not None:
                stack.extend(gate.inputs)
        for gate in netlist.topological_gates():
            if gate.output not in keep:
                continue
            composite.add_gate(
                gate.gate,
                [qualified(style, s) for s in gate.inputs],
                qualified(style, gate.output),
            )
        for po in needed_pos[style]:
            composite.add_po(po, qualified(style, po_signal[po]))
    composite.check()

    # Every chosen style is guaranteed to carry its PO's arrival by the
    # selection loop above, so index directly: a regression here should
    # raise, never silently report a 0.0 arrival.
    delay = max(
        (po_arrivals[po_style[po]][po] for po in po_names),
        default=0.0,
    )
    return MultiMapResult(
        netlist=composite,
        per_style=per_style,
        po_style=po_style,
        delay=delay,
        area=composite.area(),
        cpu_seconds=time.perf_counter() - start,
    )
