"""Cover construction: labels -> mapped netlist (the paper's Section 3.3).

Once a (best delay, best gate) pair is stored at every node, the mapped
network is built exactly as in FlowMap: a queue is seeded with all primary
outputs; for each popped node the best gate at that node is instantiated,
and every fanin (match leaf) that is neither a primary input nor already
implemented is enqueued.  Intermediate subject nodes that are interior to
several chosen matches are *duplicated implicitly* — they simply never get
a gate of their own — which is the mechanism that lets DAG covering beat
tree covering (paper Figure 2).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.core.labeling import Labels
from repro.core.match import Match
from repro.core.netlist import MappedNetlist
from repro.errors import MappingError
from repro.network.subject import SubjectNode

__all__ = ["build_cover", "signal_name"]


def signal_name(node: SubjectNode) -> str:
    """Stable signal name for a subject node in the mapped netlist."""
    return node.name if node.is_pi and node.name else f"n{node.uid}"


def build_cover(
    labels: Labels,
    name: Optional[str] = None,
    selection: Optional[Dict[int, Match]] = None,
) -> MappedNetlist:
    """Build the mapped netlist from labeling results.

    Args:
        labels: output of :func:`repro.core.labeling.compute_labels`.
        name: netlist name (defaults to the subject's name).
        selection: optional per-node match override (uid -> match), used
            by area recovery to substitute slower-but-smaller matches.
    """
    subject = labels.subject
    netlist = MappedNetlist(name or f"{subject.name}_mapped")
    for pi in subject.pis:
        netlist.add_pi(pi.name)

    implemented: Set[int] = set()
    queue = deque()
    for _, driver in subject.pos:
        queue.append(driver)

    while queue:
        node = queue.popleft()
        if node.is_pi or node.uid in implemented:
            continue
        implemented.add(node.uid)
        match = None
        if selection is not None:
            match = selection.get(node.uid)
        if match is None:
            match = labels.best[node.uid]
        if match is None:
            raise MappingError(f"no selected match at node {node!r}")
        gate = match.gate
        pin_to_leaf = {pin: leaf for pin, leaf in match.leaves()}
        inputs = [signal_name(pin_to_leaf[pin]) for pin in gate.inputs]
        netlist.add_gate(gate, inputs, signal_name(node))
        for leaf in pin_to_leaf.values():
            if not leaf.is_pi and leaf.uid not in implemented:
                queue.append(leaf)

    for po_name, driver in subject.pos:
        netlist.add_po(po_name, signal_name(driver))
    netlist.check()
    return netlist
