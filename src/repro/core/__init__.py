"""The paper's contribution: delay-optimal DAG covering, plus baselines.

* :mod:`repro.core.match` — Rudell's graph match with the paper's three
  match classes (standard / exact / extended, Definitions 1-3).
* :mod:`repro.core.labeling` — FlowMap-style optimal-delay labeling over
  library matches (Section 3.1).
* :mod:`repro.core.cover` — queue-based construction of the mapped
  netlist with implicit node duplication (Section 3.3).
* :mod:`repro.core.dag_mapper` — the proposed DAG mapper.
* :mod:`repro.core.tree_mapper` — the conventional tree-covering baseline.
* :mod:`repro.core.area_recovery` — the area/delay trade-off extension
  sketched in the paper's conclusions.
"""

from repro.core.match import Match, MatchKind, Matcher, verify_match
from repro.core.netlist import MappedGate, MappedNetlist
from repro.core.labeling import Labels, compute_labels
from repro.core.cover import build_cover
from repro.core.dag_mapper import map_dag
from repro.core.tree_mapper import map_tree
from repro.core.area_recovery import RecoveryResult, recover_area, recover_area_result
from repro.core.multimap import MultiMapResult, map_multi_decomposition
from repro.core.result import MappingResult

__all__ = [
    "Match",
    "MatchKind",
    "Matcher",
    "verify_match",
    "MappedGate",
    "MappedNetlist",
    "Labels",
    "compute_labels",
    "build_cover",
    "map_dag",
    "map_tree",
    "RecoveryResult",
    "recover_area",
    "recover_area_result",
    "MappingResult",
    "MultiMapResult",
    "map_multi_decomposition",
]
