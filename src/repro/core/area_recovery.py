"""Area recovery under a delay target (the paper's concluding extension).

The paper's mapper always instantiates the fastest match at every node,
"no matter how critical the node is", and its conclusions point to Cong &
Ding's area-delay trade-off work as the fix: off-critical subnetworks can
use slower-but-smaller matches without hurting the cycle time.

:func:`recover_area` implements that pass for library mapping: it rebuilds
the cover from the primary outputs, propagating *required times*; at each
needed node it picks, among all matches whose arrival meets the node's
required time, the one with the smallest estimated area (gate area plus
the area-flow of leaves not otherwise needed).  Because every node's
optimal label is a lower bound on its required time, a feasible match
always exists and the delay target is met by construction.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.core.cover import build_cover
from repro.core.labeling import Labels
from repro.core.match import Match, Matcher, MatchKind
from repro.core.netlist import MappedNetlist
from repro.errors import MappingError
from repro.library.patterns import PatternSet

__all__ = ["recover_area"]

_EPS = 1e-9


def recover_area(
    labels: Labels,
    patterns: PatternSet,
    kind: MatchKind = MatchKind.STANDARD,
    target: Optional[float] = None,
    name: Optional[str] = None,
) -> MappedNetlist:
    """Build a cover that meets ``target`` delay with reduced area.

    Args:
        labels: a *delay-objective* labeling of the subject graph.
        patterns: the pattern set used for labeling.
        kind: match class (must not be stricter than the labeling's).
        target: delay budget; defaults to the optimal delay
            (``labels.max_arrival``), i.e. recover area at zero delay cost.
        name: netlist name.

    Returns:
        A mapped netlist whose STA delay is <= ``target`` and whose area
        is typically below the plain delay-optimal cover's.
    """
    subject = labels.subject
    if labels.objective != "delay":
        raise MappingError("area recovery needs a delay-objective labeling")
    optimal = labels.max_arrival
    if target is None:
        target = optimal
    if target < optimal - _EPS:
        raise MappingError(
            f"target {target:g} is below the optimal delay {optimal:g}"
        )

    matcher = Matcher(patterns, kind)
    matcher.attach(subject)
    arrival = labels.arrival
    area_flow = labels.area_flow

    required: Dict[int, float] = {}
    for _, driver in subject.pos:
        required[driver.uid] = min(required.get(driver.uid, math.inf), target)

    selection: Dict[int, Match] = {}
    # Process needed nodes top-down (max-heap on uid works because uids are
    # topological: all of a node's consumers have larger uids, so by the
    # time we pop a node every consumer has tightened its required time).
    heap: List[int] = [-uid for uid in required]
    heapq.heapify(heap)
    in_heap = set(required)

    while heap:
        uid = -heapq.heappop(heap)
        in_heap.discard(uid)
        node = subject.nodes[uid]
        if node.is_pi:
            continue
        budget = required[uid]
        best_match: Optional[Match] = None
        best_cost: Tuple[float, float] = (math.inf, math.inf)
        for match in matcher.matches_at(node):
            gate = match.gate
            worst = 0.0
            estimate = gate.area
            feasible = True
            for pin, leaf in match.leaves():
                t = arrival[leaf.uid] + gate.pin_delay(pin)
                if t > budget + _EPS:
                    feasible = False
                    break
                worst = max(worst, t)
                if not leaf.is_pi and leaf.uid not in selection:
                    estimate += area_flow[leaf.uid]
            if not feasible:
                continue
            cost = (estimate, worst)
            if cost < best_cost:
                best_cost = cost
                best_match = match
        if best_match is None:
            # Fall back to the delay-optimal match (always feasible).
            best_match = labels.best[uid]
            assert best_match is not None
        selection[uid] = best_match
        gate = best_match.gate
        for pin, leaf in best_match.leaves():
            if leaf.is_pi:
                continue
            slack = budget - gate.pin_delay(pin)
            if slack < required.get(leaf.uid, math.inf) - _EPS:
                required[leaf.uid] = slack
            if leaf.uid not in in_heap and leaf.uid not in selection:
                heapq.heappush(heap, -leaf.uid)
                in_heap.add(leaf.uid)

    recovered = build_cover(
        labels, name=name or f"{subject.name}_recovered", selection=selection
    )
    # The per-node choice is guided by a heuristic area estimate, so on
    # rare structures it can lose to the plain delay-optimal cover (which
    # shares larger matches).  Guarantee "never worse": keep the smaller.
    plain = build_cover(labels, name=recovered.name)
    if plain.area() < recovered.area():
        return plain
    return recovered
