"""Area recovery under a delay target (the paper's concluding extension).

The paper's mapper always instantiates the fastest match at every node,
"no matter how critical the node is", and its conclusions point to Cong &
Ding's area-delay trade-off work as the fix: off-critical subnetworks can
use slower-but-smaller matches without hurting the cycle time.

:func:`recover_area` implements that pass for library mapping: it rebuilds
the cover from the primary outputs, propagating *required times*; at each
needed node it picks, among all matches whose arrival meets the node's
required time, the one with the smallest estimated area (gate area plus
the area-flow of leaves not otherwise needed).  Because every node's
optimal label is a lower bound on its required time, a feasible match
always exists and the delay target is met by construction.

:func:`recover_area_result` is the richer entry point used by the
campaign engine, the Pareto tuner and the ``F010`` fuzz oracle: it keeps
the per-node match *selection* alongside the netlist, so the recovered
cover can be replayed and certified by
:func:`repro.check.certify_mapping` (``selection=`` + ``target=``).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cover import build_cover
from repro.core.labeling import Labels
from repro.core.match import Match, Matcher, MatchKind
from repro.core.netlist import MappedNetlist
from repro.errors import MappingError
from repro.library.patterns import PatternSet

__all__ = ["RecoveryResult", "recover_area", "recover_area_result"]

_EPS = 1e-9


@dataclass
class RecoveryResult:
    """One area-recovery run, replayable and certifiable.

    Attributes:
        netlist: the recovered cover (or the plain delay-optimal cover
            when the heuristic lost the "never worse" comparison).
        labels: the delay-objective labeling the recovery ran over.
        selection: the per-node match override that built ``netlist``;
            ``None`` when the plain cover won (replay from
            ``labels.best`` reproduces it).
        target: the delay budget the cover is guaranteed to meet.
        delay: STA delay of ``netlist`` (<= ``target``).
        area: cell area of ``netlist``.
        plain_area: cell area of the plain delay-optimal cover — the
            baseline of the "never worse" guarantee.
        cpu_seconds: wall-clock of the recovery pass.
    """

    netlist: MappedNetlist
    labels: Labels
    selection: Optional[Dict[int, Match]]
    target: float
    delay: float
    area: float
    plain_area: float
    cpu_seconds: float

    @property
    def saving(self) -> float:
        """Fractional area saved vs the plain delay-optimal cover."""
        if self.plain_area <= 0:
            return 0.0
        return (self.plain_area - self.area) / self.plain_area


def recover_area_result(
    labels: Labels,
    patterns: PatternSet,
    kind: MatchKind = MatchKind.STANDARD,
    target: Optional[float] = None,
    name: Optional[str] = None,
) -> RecoveryResult:
    """Area recovery keeping the selection for replay/certification.

    Same contract as :func:`recover_area`, but the returned
    :class:`RecoveryResult` records the per-node selection, the plain
    cover's area and the STA delay, so callers (campaign workers, the
    fuzz battery) can certify the cover independently.
    """
    subject = labels.subject
    if labels.objective != "delay":
        raise MappingError("area recovery needs a delay-objective labeling")
    optimal = labels.max_arrival
    if target is None:
        target = optimal
    if target < optimal - _EPS:
        raise MappingError(
            f"target {target:g} is below the optimal delay {optimal:g}"
        )

    started = time.perf_counter()
    matcher = Matcher(patterns, kind)
    matcher.attach(subject)
    arrival = labels.arrival
    area_flow = labels.area_flow

    required: Dict[int, float] = {}
    for _, driver in subject.pos:
        required[driver.uid] = min(required.get(driver.uid, math.inf), target)

    selection: Dict[int, Match] = {}
    # Process needed nodes top-down (max-heap on uid works because uids
    # are topological: all of a node's consumers have larger uids, so by
    # the time we pop a node every consumer has tightened its required
    # time).  The pop order is fully deterministic — uids are unique
    # ints, every pushed leaf's uid is smaller than the node that pushed
    # it, and ``in_heap`` blocks duplicates — so the heap yields nodes
    # in strictly decreasing uid order.  The heuristic ``estimate``
    # below depends on which nodes are already in ``selection`` and is
    # therefore deterministic too: it sees exactly the nodes with a
    # larger uid that the cover walk needed.
    heap: List[int] = [-uid for uid in required]
    heapq.heapify(heap)
    in_heap = set(required)

    while heap:
        uid = -heapq.heappop(heap)
        in_heap.discard(uid)
        node = subject.nodes[uid]
        if node.is_pi:
            continue
        budget = required[uid]
        best_match: Optional[Match] = None
        best_cost: Tuple[float, float] = (math.inf, math.inf)
        for match in matcher.matches_at(node):
            gate = match.gate
            worst = 0.0
            estimate = gate.area
            feasible = True
            for pin, leaf in match.leaves():
                t = arrival[leaf.uid] + gate.pin_delay(pin)
                if t > budget + _EPS:
                    feasible = False
                    break
                worst = max(worst, t)
                if not leaf.is_pi and leaf.uid not in selection:
                    estimate += area_flow[leaf.uid]
            if not feasible:
                continue
            # Ties on (estimate, worst) keep the first match in the
            # matcher's enumeration order, which is deterministic.
            cost = (estimate, worst)
            if cost < best_cost:
                best_cost = cost
                best_match = match
        if best_match is None:
            # Fall back to the delay-optimal match (always feasible:
            # every node's label is a lower bound on its required time).
            best_match = labels.best[uid]
            if best_match is None:
                raise MappingError(
                    f"[M004] area recovery has no match at subject node "
                    f"{uid} ({node!r}): the labeling recorded no best "
                    f"match and no feasible alternative exists under the "
                    f"required time {budget:g}"
                )
        selection[uid] = best_match
        gate = best_match.gate
        for pin, leaf in best_match.leaves():
            if leaf.is_pi:
                continue
            slack = budget - gate.pin_delay(pin)
            if slack < required.get(leaf.uid, math.inf) - _EPS:
                required[leaf.uid] = slack
            if leaf.uid not in in_heap and leaf.uid not in selection:
                heapq.heappush(heap, -leaf.uid)
                in_heap.add(leaf.uid)

    recovered = build_cover(
        labels, name=name or f"{subject.name}_recovered", selection=selection
    )
    # The per-node choice is guided by a heuristic area estimate, so on
    # rare structures it can lose to the plain delay-optimal cover (which
    # shares larger matches).  Guarantee "never worse": keep the smaller.
    plain = build_cover(labels, name=recovered.name)
    plain_area = plain.area()

    from repro.timing.sta import analyze  # local import to avoid a cycle

    if plain_area < recovered.area():
        return RecoveryResult(
            netlist=plain,
            labels=labels,
            selection=None,
            target=target,
            delay=analyze(plain).delay,
            area=plain_area,
            plain_area=plain_area,
            cpu_seconds=time.perf_counter() - started,
        )
    return RecoveryResult(
        netlist=recovered,
        labels=labels,
        selection=selection,
        target=target,
        delay=analyze(recovered).delay,
        area=recovered.area(),
        plain_area=plain_area,
        cpu_seconds=time.perf_counter() - started,
    )


def recover_area(
    labels: Labels,
    patterns: PatternSet,
    kind: MatchKind = MatchKind.STANDARD,
    target: Optional[float] = None,
    name: Optional[str] = None,
) -> MappedNetlist:
    """Build a cover that meets ``target`` delay with reduced area.

    Args:
        labels: a *delay-objective* labeling of the subject graph.
        patterns: the pattern set used for labeling.
        kind: match class (must not be stricter than the labeling's).
        target: delay budget; defaults to the optimal delay
            (``labels.max_arrival``), i.e. recover area at zero delay cost.
        name: netlist name.

    Returns:
        A mapped netlist whose STA delay is <= ``target`` and whose area
        is never above the plain delay-optimal cover's.
    """
    return recover_area_result(
        labels, patterns, kind=kind, target=target, name=name
    ).netlist
