"""Graph matching between pattern graphs and subject graphs.

Implements Rudell's *graph match* algorithm with the three match classes
of the paper's Section 3.2:

* **standard match** (Definition 1): a one-to-one mapping of pattern nodes
  into subject nodes preserving edges and the in-degree of internal nodes.
  Interior subject nodes *may* have fanout escaping the match.
* **exact match** (Definition 2): a standard match whose interior nodes
  additionally have their full fanout inside the match (out-degree
  equality).  This is the class conventional tree covering is restricted
  to.
* **extended match** (Definition 3): a standard match without the
  one-to-one requirement, which lets the matcher *unfold* the subject DAG
  by duplicating subject nodes (paper Figure 1).  Unfolding implies one
  condition Definition 3's text leaves implicit: at every pattern node
  the children map bijectively onto the subject node's fanins (two
  pattern children may share a subject node only when the subject node
  itself appears twice in the fanin list) — otherwise a "match" could
  implement the wrong function.

Input permutations of a pattern are explored here (both orders of every
NAND2 node), which is what expands the pattern set in the sense of the
paper's footnote 2.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, cast

from repro.core.cuts import CutEnumeration, cut_function, enumerate_cuts
from repro.errors import MappingError
from repro.library.gate import Gate
from repro.library.npn_table import Chain, NPNTable, Shape, table_for
from repro.library.patterns import PatternGraph, PatternNode, PatternSet
from repro.network.bitsim import cone_words
from repro.network.functions import TruthTable, variable_bits
from repro.network.npn import npn_canonical
from repro.network.subject import NodeType, SubjectGraph, SubjectNode
from repro.perf.counters import MatchStats
from repro.perf.signature import cone_signature
from repro.perf.trie import PatternTrie

__all__ = [
    "MatchKind",
    "Match",
    "Matcher",
    "MatchViolation",
    "MatchVerification",
    "verify_match",
]


class MatchKind(enum.Enum):
    """The three match classes of Definitions 1-3."""

    STANDARD = "standard"
    EXACT = "exact"
    EXTENDED = "extended"


#: One replayable match template: (pattern, ((pattern uid, cone position), ...)).
_SigTemplate = Tuple["PatternGraph", Tuple[Tuple[int, int], ...]]


class Match:
    """A successful match of a pattern graph rooted at a subject node.

    Attributes:
        pattern: the matched :class:`PatternGraph`.
        root: the subject node implementing the gate output.
        binding: pattern node uid -> subject node, for every pattern node.
    """

    __slots__ = ("pattern", "root", "binding")

    def __init__(
        self,
        pattern: PatternGraph,
        root: SubjectNode,
        binding: Dict[int, SubjectNode],
    ):
        self.pattern = pattern
        self.root = root
        self.binding = binding

    @property
    def gate(self) -> Gate:
        return self.pattern.gate

    def leaves(self) -> List[Tuple[str, SubjectNode]]:
        """(pin name, subject node) for every pattern leaf."""
        return [
            (leaf.pin, self.binding[leaf.uid]) for leaf in self.pattern.leaves
        ]

    def leaf_nodes(self) -> List[SubjectNode]:
        return [self.binding[leaf.uid] for leaf in self.pattern.leaves]

    def internal_nodes(self) -> List[SubjectNode]:
        """Subject nodes covered by internal pattern nodes (root included)."""
        out = []
        seen = set()
        for pnode in self.pattern.nodes:
            if pnode.is_leaf:
                continue
            snode = self.binding[pnode.uid]
            if snode.uid not in seen:
                seen.add(snode.uid)
                out.append(snode)
        return out

    def identity(self) -> Tuple[object, ...]:
        """Key identifying functionally identical matches for dedup.

        Pins are reduced to their interchangeability classes: two matches
        that differ only by swapping symmetric, timing-identical pins
        implement the same gate instance with the same cost.
        """
        classes = self.pattern.pin_classes
        return (
            self.pattern.gate.name,
            self.root.uid,
            frozenset(
                (classes.get(pin, pin), node.uid) for pin, node in self.leaves()
            ),
        )

    def __repr__(self) -> str:
        pins = ", ".join(f"{pin}->{node.uid}" for pin, node in self.leaves())
        return f"Match({self.gate.name} @ {self.root.uid}; {pins})"


class Matcher:
    """Enumerates matches of a pattern set on a subject graph.

    With ``cache=True`` (the default) the matcher runs the performance
    layer of :mod:`repro.perf`: structural cone signatures memoize whole
    ``matches_at`` results across structurally identical subject nodes,
    and the pattern trie shares binding enumeration and feasibility work
    across patterns.  Both are exact — the produced match lists are
    byte-identical, in content and order, to the uncached path
    (``cache=False``), which is preserved as the reference implementation.

    ``engine`` selects how candidate patterns are found at a node:

    * ``"structural"`` (default): every pattern with the right root kind
      is tried, exactly as the paper describes.
    * ``"cuts"``: two sound pre-filters of
      :mod:`repro.library.npn_table` run first — k-feasible cuts of the
      subject (:mod:`repro.core.cuts`) are NPN-canonised and compared
      against each pattern's truncation chain (functional filter), and
      the pattern's depth-capped tree shape must embed into the subject
      cone's unfolding (structural filter, which sees the NAND2/INV
      bracketing the functional one cannot).  Only surviving patterns
      reach the binding enumerator.  Both filters are *sound* for
      STANDARD/EXACT matches (a pruned pattern provably has no match),
      so the match stream stays byte-identical to the structural engine;
      EXTENDED matches are not injective and are refused.
    """

    def __init__(
        self,
        patterns: PatternSet,
        kind: MatchKind = MatchKind.STANDARD,
        cache: bool = True,
        stats: Optional[MatchStats] = None,
        crosscheck: bool = False,
        engine: str = "structural",
        npn_table: Optional[NPNTable] = None,
    ):
        if engine not in ("structural", "cuts"):
            raise MappingError(
                f"unknown matching engine {engine!r}: "
                "expected 'structural' or 'cuts'"
            )
        if engine == "cuts" and kind is MatchKind.EXTENDED:
            raise MappingError(
                "the cut matching engine supports standard/exact matches "
                "only: extended matches are not injective, so the "
                "truncation-chain filter is unsound for them"
            )
        self.patterns = patterns
        self.kind = kind
        self.cache = cache
        self.crosscheck = crosscheck
        self.engine = engine
        self.stats = stats if stats is not None else MatchStats()
        self._engine_cuts = engine == "cuts"
        if self._engine_cuts:
            table = npn_table if npn_table is not None else table_for(patterns)
            self.npn_table: Optional[NPNTable] = table
            # Dense chain ids (distinct chains are few — tens for the
            # 876-pattern 44-3 set) and, per root kind, the chain id of
            # every pattern in ``for_root`` order, so the per-node filter
            # is one list index per pattern.
            chain_id: Dict[Chain, int] = {}
            cid_of: Dict[int, int] = {}
            self._chain_entries: List[Chain] = []
            for pattern, chain in zip(patterns.patterns, table.chains):
                cid = chain_id.get(chain)
                if cid is None:
                    cid = len(self._chain_entries)
                    chain_id[chain] = cid
                    self._chain_entries.append(chain)
                cid_of[id(pattern)] = cid
            self._chain_ids_by_kind: Dict[NodeType, List[int]] = {
                root_kind: [cid_of[id(p)] for p in root_patterns]
                for root_kind, root_patterns in patterns.by_root_kind.items()
            }
            # Shape interning: pattern shapes and (in attach) subject
            # cone unfoldings share one id space, so the structural
            # embed test memoizes on a pair of small ints.  Key ``None``
            # marks the atoms — the "?" wildcard (id 0) and the subject
            # PI marker (id 1); a 1-tuple is an INV, a 2-tuple a NAND
            # with id-sorted children (equal sub-shapes get equal ids,
            # so id order is a canonical order).
            self._shape_intern: Dict[object, int] = {"?": 0, "P": 1}
            self._shape_keys: List[Optional[Tuple[int, ...]]] = [None, None]
            sid_of: Dict[int, int] = {}
            for pattern, shape in zip(patterns.patterns, table.shapes):
                sid_of[id(pattern)] = self._intern_pattern_shape(shape)
            self._shape_ids_by_kind: Dict[NodeType, List[int]] = {
                root_kind: [sid_of[id(p)] for p in root_patterns]
                for root_kind, root_patterns in patterns.by_root_kind.items()
            }
            self._embed_memo: Dict[Tuple[int, int], bool] = {}
            # Chain verdicts are a function of the node's cut classes
            # alone, and the filtered pattern list a function of
            # (verdict list, cone shape, root kind) — both memoized so
            # structurally repetitive circuits pay the filter once per
            # distinct cone.
            self._allowed_by_classes: Dict[
                FrozenSet[Tuple[Tuple[int, int], int]], List[bool]
            ] = {}
            self._no_info: List[bool] = [True] * len(self._chain_entries)
            self._filtered_memo: Dict[
                Tuple[int, int, NodeType], Tuple[List[PatternGraph], int]
            ] = {}
        else:
            self.npn_table = None
            self._chain_entries = []
            self._chain_ids_by_kind = {}
        # Pattern-side fanout counts, needed for the exact-match condition.
        self._pattern_fanout: Dict[int, Dict[int, int]] = {}
        for pattern in patterns.patterns:
            counts: Dict[int, int] = {}
            for node in pattern.nodes:
                for fanin in node.fanins:
                    counts[fanin.uid] = counts.get(fanin.uid, 0) + 1
            self._pattern_fanout[id(pattern)] = counts
        if cache:
            self._trie: Optional[PatternTrie] = PatternTrie(patterns)
            self._shape_of: Optional[Dict[int, int]] = self._trie.shape_of
            # Exact-kind signatures record min(uses, cap): any use count
            # above every pattern-side fanout fails out-degree equality
            # the same way, so larger counts need not be distinguished.
            self._use_cap = 1 + max(
                (
                    max(counts.values(), default=0)
                    for counts in self._pattern_fanout.values()
                ),
                default=0,
            )
            # signature key -> list of (pattern, ((pattern uid, cone index), ...))
            # templates; subject-independent, so it survives attach().
            self._sig_cache: Optional[Dict[Tuple[int, ...], List[_SigTemplate]]] = {}
        else:
            self._trie = None
            self._shape_of = None
            self._use_cap = 0
            self._sig_cache = None

    # ------------------------------------------------------------------
    def attach(self, subject: SubjectGraph) -> None:
        """Precompute subject-side data (fanout-use counts, depths)."""
        self._uses: List[int] = [0] * len(subject.nodes)
        for node in subject.nodes:
            for fanin in node.fanins:
                self._uses[fanin.uid] += 1
        for _, driver in subject.pos:
            self._uses[driver.uid] += 1
        # Clamped-to-1 view for area-flow denominators: hoisted here so
        # the labeling pass reads one list instead of calling
        # subject_uses() per node (PIs included).
        self._uses_floor: List[int] = [u if u > 1 else 1 for u in self._uses]
        self._depth: List[int] = [0] * len(subject.nodes)
        for node in subject.nodes:
            if node.fanins:
                self._depth[node.uid] = 1 + max(
                    self._depth[f.uid] for f in node.fanins
                )
        # Structural-feasibility memo: (pattern shape, subject uid) ->
        # can the pattern subtree embed at the subject node, ignoring
        # binding constraints?  A necessary condition that is computed at
        # most once per pair — this is what keeps the labeling within the
        # paper's O(s*p) bound in practice.  With the trie enabled the
        # key is the interned subtree shape, so every pattern sharing the
        # shape shares the entry.
        self._feasible_cache: Dict[Tuple[int, int], bool] = {}
        if self._engine_cuts:
            table = self.npn_table
            assert table is not None  # engine invariant
            self._cut_enum: Optional[CutEnumeration] = enumerate_cuts(
                subject, table.k, max_depth=table.depth_cap
            )
            self._allowed_cache: Dict[int, Optional[List[bool]]] = {}
            # Depth-capped cone unfolding shape of every subject node,
            # interned into the shared shape space.  d sweeps 1..cap;
            # at each step a node's shape is its kind over the fanins'
            # depth-(d-1) shapes, PIs stay atomic.
            intern = self._intern_shape_key
            wild, pi_marker = 0, 1
            topo = subject.topological()
            prev: List[int] = [wild] * len(subject.nodes)
            for node in topo:
                if node.is_pi:
                    prev[node.uid] = pi_marker
            for _ in range(table.depth_cap):
                cur: List[int] = [wild] * len(subject.nodes)
                for node in topo:
                    if node.is_pi:
                        cur[node.uid] = pi_marker
                    elif node.kind is NodeType.INV:
                        cur[node.uid] = intern((prev[node.fanins[0].uid],))
                    else:
                        a = prev[node.fanins[0].uid]
                        b = prev[node.fanins[1].uid]
                        if a > b:
                            a, b = b, a
                        cur[node.uid] = intern((a, b))
                prev = cur
            self._subject_shape: List[int] = prev

    # ------------------------------------------------------------------
    # Cut-engine candidate filter
    # ------------------------------------------------------------------
    def _intern_shape_key(self, key: object) -> int:
        sid = self._shape_intern.get(key)
        if sid is None:
            sid = len(self._shape_keys)
            self._shape_intern[key] = sid
            self._shape_keys.append(cast(Tuple[int, ...], key))
        return sid

    def _intern_pattern_shape(self, shape: Shape) -> int:
        """Intern one nested-tuple pattern shape into the id space."""
        tag = shape[0]
        if tag == "?":
            return 0
        if tag == "I":
            child = self._intern_pattern_shape(cast(Shape, shape[1]))
            return self._intern_shape_key((child,))
        a = self._intern_pattern_shape(cast(Shape, shape[1]))
        b = self._intern_pattern_shape(cast(Shape, shape[2]))
        if a > b:
            a, b = b, a
        return self._intern_shape_key((a, b))

    def _embed(self, pid: int, sid: int) -> bool:
        """Can the truncated pattern shape embed into the subject cone?

        A necessary condition for any injective match (edges and kinds
        are preserved, and a pattern inner node can never sit on a PI),
        checked against the subject's depth-capped unfolding.  The "?"
        wildcard (pattern leaves and the truncation boundary) embeds
        anywhere; NAND children try both pairings.  Memoized globally —
        shape ids are stable across subjects.
        """
        if pid == 0:  # wildcard
            return True
        memo = self._embed_memo
        memo_key = (pid, sid)
        cached = memo.get(memo_key)
        if cached is not None:
            return cached
        pk = self._shape_keys[pid]
        sk = self._shape_keys[sid]
        assert pk is not None  # pattern shapes contain no PI atom
        if sk is None or len(pk) != len(sk):
            result = False  # atomic subject (PI/boundary) or kind mismatch
        elif len(pk) == 1:
            result = self._embed(pk[0], sk[0])
        else:
            p1, p2 = pk
            s1, s2 = sk
            result = (self._embed(p1, s1) and self._embed(p2, s2)) or (
                p1 != p2
                and s1 != s2
                and self._embed(p1, s2)
                and self._embed(p2, s1)
            )
        memo[memo_key] = result
        return result

    def _allowed_chains(self, snode: SubjectNode) -> Optional[List[bool]]:
        """Which truncation chains are satisfiable at ``snode``.

        Indexed by dense chain id; ``None`` means "no information" (the
        cut enumeration was truncated at or below this node, so every
        pattern must be tried).  Cached per subject uid.
        """
        cache = self._allowed_cache
        if snode.uid in cache:
            return cache[snode.uid]
        stats = self.stats
        enum = self._cut_enum
        assert enum is not None  # attach() ran
        if snode.uid in enum.tainted:
            stats.cut_tainted_nodes += 1
            cache[snode.uid] = None
            return None
        stats.cut_filter_nodes += 1
        # NPN class -> minimum derivation depth over the node's cuts.
        classes: Dict[Tuple[int, int], int] = {}
        for cut, depth in enum.at(snode).items():
            if len(cut) == 1 and next(iter(cut)) is snode:
                continue  # trivial cut: carries no functional information
            order = sorted(cut, key=lambda leaf: leaf.uid)
            n = len(order)
            canonical, _ = npn_canonical(
                TruthTable(n, cut_function(snode, order))
            )
            class_key = (n, canonical.bits)
            old = classes.get(class_key)
            if old is None or depth < old:
                classes[class_key] = depth
        # Chain verdicts depend on the classes alone: nodes sharing a
        # class set share one verdict list (by identity, which also
        # keys the filtered-pattern memo).
        class_key = frozenset(classes.items())
        allowed = self._allowed_by_classes.get(class_key)
        if allowed is None:
            allowed = []
            for chain in self._chain_entries:
                ok = True
                for t, n, bits in chain:
                    found = classes.get((n, bits))
                    if found is None or found > t:
                        ok = False
                        break
                allowed.append(ok)
            self._allowed_by_classes[class_key] = allowed
        cache[snode.uid] = allowed
        return allowed

    def _filtered_patterns(self, snode: SubjectNode) -> List[PatternGraph]:
        """Patterns worth trying at ``snode``, in pattern-set order.

        The structural engine returns the full root-kind list; the cut
        engine drops patterns whose truncation chain no cut of ``snode``
        can satisfy, and patterns whose tree shape cannot embed into the
        node's cone unfolding.  Dropping never reorders, so both engines
        feed the identity dedup the same match stream.  The filtered
        list is memoized per (chain verdicts, cone shape, root kind).
        """
        root_patterns = self.patterns.for_root(snode.kind)
        if not self._engine_cuts:
            return root_patterns
        allowed = self._allowed_chains(snode)
        if allowed is None:
            # Tainted cut enumeration: no functional information, but
            # the shape filter is cut-independent and still sound.
            allowed = self._no_info
        sid = self._subject_shape[snode.uid]
        memo_key = (id(allowed), sid, snode.kind)
        hit = self._filtered_memo.get(memo_key)
        if hit is None:
            chain_ids = self._chain_ids_by_kind[snode.kind]
            shape_ids = self._shape_ids_by_kind[snode.kind]
            kept = [
                pattern
                for pattern, cid, psid in zip(
                    root_patterns, chain_ids, shape_ids
                )
                if allowed[cid] and self._embed(psid, sid)
            ]
            hit = (kept, len(root_patterns) - len(kept))
            self._filtered_memo[memo_key] = hit
        self.stats.cut_patterns_pruned += hit[1]
        return hit[0]

    def _feasible(self, pnode: PatternNode, snode: SubjectNode) -> bool:
        """Binding-independent embeddability of a pattern subtree."""
        if pnode.kind is NodeType.PI:
            return True
        shape_of = self._shape_of
        pid = shape_of[id(pnode)] if shape_of is not None else id(pnode)
        key = (pid, snode.uid)
        cached = self._feasible_cache.get(key)
        if cached is not None:
            self.stats.feasibility_hits += 1
            return cached
        self.stats.feasibility_misses += 1
        if pnode.kind is not snode.kind:
            result = False
        elif pnode.kind is NodeType.INV:
            result = self._feasible(pnode.fanins[0], snode.fanins[0])
        else:
            p0, p1 = pnode.fanins
            s0, s1 = snode.fanins
            result = (
                self._feasible(p0, s0) and self._feasible(p1, s1)
            ) or (
                s0 is not s1
                and self._feasible(p0, s1)
                and self._feasible(p1, s0)
            )
        self._feasible_cache[key] = result
        return result

    def matches_at(self, snode: SubjectNode) -> List[Match]:
        """All (deduplicated) matches of the pattern set rooted at ``snode``.

        :meth:`attach` must have been called with the subject graph first.
        """
        if snode.is_pi:
            return []
        if not self.cache:
            return self._crosschecked(self._matches_at_direct(snode))
        assert self._sig_cache is not None  # cache=True invariant
        stats = self.stats
        sig, cone = cone_signature(
            snode,
            self.patterns.max_depth,
            uses=self._uses if self.kind is MatchKind.EXACT else None,
            use_cap=self._use_cap,
        )
        templates = self._sig_cache.get(sig)
        if templates is not None:
            # Replay: rebind every cached match onto this root through the
            # canonical cone ordering.  Never recomputed.
            stats.signature_hits += 1
            stats.matches_replayed += len(templates)
            return self._crosschecked(
                [
                    Match(
                        pattern, snode, {puid: cone[pos] for puid, pos in items}
                    )
                    for pattern, items in templates
                ]
            )
        stats.signature_misses += 1
        results = self._matches_at_grouped(snode)
        index = {id(node): pos for pos, node in enumerate(cone)}
        templates = []  # type: List[_SigTemplate]
        for match in results:
            try:
                items = tuple(
                    (puid, index[id(node)])
                    for puid, node in match.binding.items()
                )
            except KeyError:
                # A bound node escaped the signature cone — impossible by
                # the depth argument in repro.perf.signature; refuse to
                # cache rather than risk an unsound replay.
                return self._crosschecked(results)
            templates.append((match.pattern, items))
        self._sig_cache[sig] = templates
        return self._crosschecked(results)

    def _matches_at_direct(self, snode: SubjectNode) -> List[Match]:
        """The seed path: every pattern enumerated independently."""
        results: List[Match] = []
        seen: Set[Tuple[object, ...]] = set()
        depth = self._depth[snode.uid]
        for pattern in self._filtered_patterns(snode):
            if pattern.depth > depth:
                continue  # the pattern cannot fit above the PIs
            for binding in self._enumerate(pattern, snode):
                match = Match(pattern, snode, binding)
                key = match.identity()
                if key not in seen:
                    seen.add(key)
                    results.append(match)
        return results

    def _matches_at_grouped(self, snode: SubjectNode) -> List[Match]:
        """Trie path: one enumeration per pattern group, bindings translated.

        Patterns are still visited in pattern-set order and each group's
        binding list is in enumeration order, so the match stream — and
        therefore the identity dedup — is exactly the direct path's.
        """
        results: List[Match] = []
        seen: Set[Tuple[object, ...]] = set()
        depth = self._depth[snode.uid]
        stats = self.stats
        assert self._trie is not None  # cache=True invariant
        group_of = self._trie.group_of
        group_bindings: Dict[int, List[Dict[int, SubjectNode]]] = {}
        for pattern in self._filtered_patterns(snode):
            if pattern.depth > depth:
                continue  # the pattern cannot fit above the PIs
            group = group_of[id(pattern)]
            bindings = group_bindings.get(id(group))
            if bindings is None:
                bindings = list(self._enumerate(group.rep, snode))
                group_bindings[id(group)] = bindings
                stats.groups_enumerated += 1
                stats.bindings_enumerated += len(bindings)
            translation = group.translations[id(pattern)]
            for b in bindings:
                if translation is None:
                    binding = b
                else:
                    binding = {
                        translation[puid]: node for puid, node in b.items()
                    }
                match = Match(pattern, snode, binding)
                key = match.identity()
                if key not in seen:
                    seen.add(key)
                    results.append(match)
        return results

    # ------------------------------------------------------------------
    def _enumerate(
        self, pattern: PatternGraph, root: SubjectNode
    ) -> Iterator[Dict[int, SubjectNode]]:
        """Yield complete bindings of ``pattern`` rooted at ``root``.

        Obligations live on one shared stack (top = end of list): each
        frame pops its obligation, pushes child obligations before
        recursing and restores the stack on the way out, so a step costs
        O(1) instead of the former O(n) list slice per recursion level.
        """
        injective = self.kind is not MatchKind.EXTENDED
        exact = self.kind is MatchKind.EXACT
        pattern_fanout = self._pattern_fanout[id(pattern)]
        swap_safe = pattern.swap_safe
        binding: Dict[int, SubjectNode] = {}
        images: Dict[int, int] = {}  # subject uid -> pattern uid
        stack: List[Tuple[PatternNode, SubjectNode]] = [(pattern.root, root)]

        def assign() -> Iterator[None]:
            if not stack:
                yield None
                return
            pnode, snode = stack.pop()
            try:
                prior = binding.get(pnode.uid)
                if prior is not None:
                    if prior is snode:
                        yield from assign()
                    return
                if injective and snode.uid in images:
                    return
                if pnode.kind is NodeType.PI:
                    binding[pnode.uid] = snode
                    images[snode.uid] = pnode.uid
                    try:
                        yield from assign()
                    finally:
                        del binding[pnode.uid]
                        if images.get(snode.uid) == pnode.uid:
                            del images[snode.uid]
                    return
                if not self._feasible(pnode, snode):
                    return
                if exact and pattern_fanout.get(pnode.uid, 0) > 0:
                    # Interior node: all subject fanout must stay inside the
                    # match, i.e. out-degree equality (Definition 2, cond. 3).
                    if self._uses[snode.uid] != pattern_fanout[pnode.uid]:
                        return
                binding[pnode.uid] = snode
                images[snode.uid] = pnode.uid
                try:
                    if pnode.kind is NodeType.INV:
                        stack.append((pnode.fanins[0], snode.fanins[0]))
                        yield from assign()
                        stack.pop()
                    else:
                        p0, p1 = pnode.fanins
                        s0, s1 = snode.fanins
                        stack.append((p1, s1))
                        stack.append((p0, s0))
                        yield from assign()
                        stack.pop()
                        stack.pop()
                        if s0 is not s1 and pnode.uid not in swap_safe:
                            # swap_safe: disjoint isomorphic tree children
                            # make the swapped order redundant (it can only
                            # reproduce cost-identical matches).
                            stack.append((p1, s0))
                            stack.append((p0, s1))
                            yield from assign()
                            stack.pop()
                            stack.pop()
                finally:
                    del binding[pnode.uid]
                    if images.get(snode.uid) == pnode.uid:
                        del images[snode.uid]
            finally:
                stack.append((pnode, snode))

        for _ in assign():
            yield dict(binding)

    def subject_uses(self, snode: SubjectNode) -> int:
        """Fanout-use count of a subject node (edges plus PO references)."""
        return self._uses[snode.uid]

    @property
    def uses_floor(self) -> List[int]:
        """Per-uid use counts clamped to at least 1 (area-flow denominators).

        Computed once in :meth:`attach`; treat as read-only.
        """
        return self._uses_floor

    # ------------------------------------------------------------------
    # Packed-cone functional cross-check (EXTENDED matches)
    # ------------------------------------------------------------------
    def _crosschecked(self, matches: List[Match]) -> List[Match]:
        """Optionally cross-check EXTENDED matches before returning them."""
        if self.crosscheck and self.kind is MatchKind.EXTENDED:
            for match in matches:
                self._crosscheck_cone(match)
        return matches

    def _crosscheck_cone(self, match: Match) -> None:
        """Verify the matched subject cone computes the gate's function.

        EXTENDED matches drop injectivity, so structural replay is the
        one match class where an unsound binding could silently change
        functionality.  The check evaluates the subject cone between the
        match root and its leaf nodes over packed truth-table words and
        compares against the gate's truth table with its pins bound to
        the same words.  Free variables are assigned only to *pure*
        leaves: a subject node bound both as a leaf and as an interior
        node (an unfolding artefact) is constrained — its value always
        equals its own cone function of the deeper leaves — so both
        sides evaluate it that way, making the comparison exact under
        exactly the correlations the subject graph enforces.  Shared
        leaves likewise tie the corresponding gate inputs together on
        both sides.
        """
        leaves = match.leaves()
        interior = {snode.uid for snode in match.internal_nodes()}
        order: List[SubjectNode] = []
        seen: Set[int] = set()
        for _, node in leaves:
            if node.uid not in seen and node.uid not in interior:
                seen.add(node.uid)
                order.append(node)
        n_leaves = len(order)
        mask = (1 << (1 << n_leaves)) - 1
        leaf_words = {
            node.uid: variable_bits(k, n_leaves) for k, node in enumerate(order)
        }
        cone = cone_words(match.root, leaf_words, mask)
        gate = match.gate
        # Dual-role leaves get their computed cone word, not a variable.
        pin_word = {
            pin: cone_words(node, leaf_words, mask) for pin, node in leaves
        }
        expected = gate.tt.eval_words(
            [pin_word.get(pin, 0) for pin in gate.inputs], mask
        )
        self.stats.cone_crosschecks += 1
        if cone != expected:
            raise MappingError(
                f"extended match of {gate.name!r} at subject node "
                f"{match.root.uid} fails the packed-cone functional "
                f"cross-check: the covered cone does not compute the "
                f"gate's function"
            )


class MatchViolation:
    """One violation of a match-class definition, with a stable code.

    The codes are the ``C1##`` series of the :mod:`repro.check` catalog:

    ========  =====================================================
    ``C101``  pattern node unbound
    ``C102``  pattern edge not preserved in the subject
    ``C103``  fanin multiset / in-degree mismatch at a pattern node
    ``C104``  mapping not one-to-one (standard/exact matches)
    ``C105``  out-degree mismatch at an interior node (exact matches)
    ``C106``  root binding mismatch
    ========  =====================================================
    """

    __slots__ = ("code", "message")

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchViolation):
            return NotImplemented
        return self.code == other.code and self.message == other.message

    def __hash__(self) -> int:
        return hash((self.code, self.message))

    def __str__(self) -> str:
        return f"{self.code}: {self.message}"

    def __repr__(self) -> str:
        return f"MatchViolation({self.code!r}, {self.message!r})"


class MatchVerification:
    """Structured result of :func:`verify_match`.

    Behaves like the violation collection it wraps: it is *falsy when the
    match is valid*, iterable, and sized — so ``assert not
    verify_match(...)`` still reads "the match is valid".  ``ok`` is the
    explicit spelling, ``codes()``/``messages()`` project the violation
    fields, and the :mod:`repro.check` certificate checker consumes the
    records directly as C-series diagnostics.
    """

    __slots__ = ("violations",)

    def __init__(self, violations: Optional[List[MatchViolation]] = None):
        self.violations: List[MatchViolation] = list(violations or [])

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str) -> None:
        self.violations.append(MatchViolation(code, message))

    def codes(self) -> List[str]:
        return [v.code for v in self.violations]

    def messages(self) -> List[str]:
        return [v.message for v in self.violations]

    def __bool__(self) -> bool:
        return bool(self.violations)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[MatchViolation]:
        return iter(self.violations)

    def __repr__(self) -> str:
        if self.ok:
            return "MatchVerification(ok)"
        return f"MatchVerification({self.codes()})"


def subject_uses(subject: SubjectGraph) -> Dict[int, int]:
    """Per-uid fanout-use counts (fanin edges plus PO references).

    The out-degree side of Definition 3 (exact matches).  Callers that
    verify many matches against one subject should compute this once and
    pass it to :func:`verify_match` via ``uses=`` — recomputing it per
    match makes every verification O(|subject|).
    """
    uses: Dict[int, int] = {}
    for snode in subject.nodes:
        for fanin in snode.fanins:
            uses[fanin.uid] = uses.get(fanin.uid, 0) + 1
    for _, driver in subject.pos:
        uses[driver.uid] = uses.get(driver.uid, 0) + 1
    return uses


def verify_match(
    match: Match,
    subject: SubjectGraph,
    kind: MatchKind,
    uses: Optional[Dict[int, int]] = None,
) -> MatchVerification:
    """Independently check a match against Definitions 1-3.

    Returns a :class:`MatchVerification` — falsy when the match is valid,
    otherwise a collection of coded :class:`MatchViolation` records.
    Used by the test suite as an oracle for the matcher and by
    :mod:`repro.check` as the certificate primitive for cover legality.
    ``uses`` optionally supplies :func:`subject_uses` precomputed (only
    consulted for exact matches).
    """
    problems = MatchVerification()
    pattern = match.pattern
    binding = match.binding

    for pnode in pattern.nodes:
        if pnode.uid not in binding:
            problems.add("C101", f"pattern node {pnode.uid} unbound")
    if problems:
        return problems

    # Condition 1: edge preservation.  Subject fanins are NAND2/INV
    # (at most two), so each pattern edge is checked directly against
    # the bound parent's fanin list — materialising the subject's whole
    # edge set here made every verification O(|subject|).
    for pnode in pattern.nodes:
        for fanin in pnode.fanins:
            child_uid = binding[fanin.uid].uid
            parent = binding[pnode.uid]
            if all(f.uid != child_uid for f in parent.fanins):
                problems.add(
                    "C102",
                    f"pattern edge {fanin.uid}->{pnode.uid} not preserved",
                )

    # Condition 2: in-degree equality for internal pattern nodes, plus
    # the per-node fanin bijection that DAG unfolding implies: the
    # multiset of a pattern node's child images must equal the subject
    # node's fanin multiset.  (Definition 3's literal text would admit
    # two pattern children following the *same* subject edge — e.g.
    # matching NAND2(m, m') onto NAND2(a, b) with both m, m' on a —
    # which does not correspond to any unfolding of the subject DAG and
    # implements the wrong function.  Standard/exact matches satisfy the
    # bijection automatically through injectivity.)
    for pnode in pattern.nodes:
        if pnode.is_leaf:
            continue
        snode = binding[pnode.uid]
        if len(pnode.fanins) != len(snode.fanins):
            problems.add(
                "C103", f"in-degree mismatch at pattern node {pnode.uid}"
            )
            continue
        child_images = sorted(binding[c.uid].uid for c in pnode.fanins)
        subject_fanins = sorted(f.uid for f in snode.fanins)
        if child_images != subject_fanins:
            problems.add(
                "C103",
                f"fanin multiset mismatch at pattern node {pnode.uid}: "
                f"children map to {child_images}, subject has {subject_fanins}",
            )

    # One-to-one for standard/exact.
    if kind is not MatchKind.EXTENDED:
        images = [binding[p.uid].uid for p in pattern.nodes]
        if len(set(images)) != len(images):
            problems.add("C104", "mapping is not one-to-one")

    # Out-degree equality for exact matches (interior nodes only).
    if kind is MatchKind.EXACT:
        pattern_fanout: Dict[int, int] = {}
        for pnode in pattern.nodes:
            for fanin in pnode.fanins:
                pattern_fanout[fanin.uid] = pattern_fanout.get(fanin.uid, 0) + 1
        if uses is None:
            uses = subject_uses(subject)
        for pnode in pattern.nodes:
            if pnode.is_leaf or pattern_fanout.get(pnode.uid, 0) == 0:
                continue
            if uses.get(binding[pnode.uid].uid, 0) != pattern_fanout[pnode.uid]:
                problems.add(
                    "C105", f"out-degree mismatch at pattern node {pnode.uid}"
                )

    # The root must implement the gate output at the designated node.
    if binding[pattern.root.uid] is not match.root:
        problems.add("C106", "root binding mismatch")
    return problems
