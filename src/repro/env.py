"""Typed registry of every ``REPRO_*`` environment variable.

This module is the *only* place in the package that touches
``os.environ`` — the source linter enforces this with code ``S104``
(see :mod:`repro.check.source`).  Scattered ``os.environ.get`` calls
made the determinism story unauditable: a knob could silently change a
byte-compared output (simulation vector counts, cache directories,
fault injection) without showing up in any one inventory.  Here every
variable has a name, a type, a default and a one-line description, and
reads go through parse-validating accessors that raise the coded
:class:`~repro.errors.EnvVarError` on malformed values.

Semantics shared by every accessor:

* an unset variable *and* an empty string both mean "use the default" —
  ``FOO= cmd`` is a common way to neutralise a variable in CI;
* parse failures raise :class:`EnvVarError` whose message starts with
  ``NAME=<raw>`` so call sites can convert it into their own coded
  error (``[R002]`` in the suite runner, :class:`NetworkError` in the
  simulation kernel) without rewording;
* reading a name that is not in :data:`REGISTRY` is a programming
  error and raises ``KeyError`` — register new knobs here first.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import EnvVarError

__all__ = [
    "EnvVar",
    "REGISTRY",
    "read_float",
    "read_int",
    "read_raw",
    "read_str",
]


@dataclass(frozen=True)
class EnvVar:
    """One registered environment variable.

    Attributes:
        name: the full ``REPRO_*`` variable name.
        kind: value type, one of ``"int"``, ``"float"``, ``"str"``,
            ``"path"`` (documentation; the accessor used at the call
            site is what parses).
        default: human-readable default, for docs and ``--help`` text
            (``None`` = unset means the feature is off).
        description: one line on what the variable controls.
    """

    name: str
    kind: str
    default: Optional[str]
    description: str


def _registry(entries: Tuple[EnvVar, ...]) -> Dict[str, EnvVar]:
    out: Dict[str, EnvVar] = {}
    for var in entries:
        if var.name in out:
            raise ValueError(f"duplicate env var registration {var.name!r}")
        out[var.name] = var
    return out


#: Every environment variable the package reads, in catalog order.
REGISTRY: Dict[str, EnvVar] = _registry(
    (
        EnvVar(
            "REPRO_SIM_VECTORS", "int", "4096",
            "random simulation batch width for >16-input equivalence",
        ),
        EnvVar(
            "REPRO_SIM_SEED", "int", "2024",
            "PRNG seed for the random simulation batch",
        ),
        EnvVar(
            "REPRO_NPN_CACHE_DIR", "path", "~/.cache/repro/npn",
            "persistent side-cache directory for precomputed NPN tables",
        ),
        EnvVar(
            "REPRO_CELL_TIMEOUT", "float", None,
            "per-cell wall-clock budget (seconds) in the suite runner",
        ),
        EnvVar(
            "REPRO_CELL_RETRIES", "int", "2",
            "bounded retry budget for transient cell failures",
        ),
        EnvVar(
            "REPRO_CELL_BACKOFF", "float", "0.05",
            "base delay (seconds) of the exponential retry backoff",
        ),
        EnvVar(
            "REPRO_FAULT_INJECT", "str", None,
            "deterministic worker fault injection: mode:label[,mode:label]",
        ),
        EnvVar(
            "REPRO_FUZZ_INJECT", "str", None,
            "deterministic fuzz-oracle mutation: delay|cover|corrupt|engine",
        ),
        EnvVar(
            "REPRO_TUNE_SEED", "int", "2024",
            "base PRNG seed for library-variant generation in repro.tune",
        ),
    )
)


def read_raw(name: str) -> Optional[str]:
    """The raw value of a *registered* variable; ``None`` when unset/empty.

    This is the package's single ``os.environ`` access point.
    """
    if name not in REGISTRY:
        raise KeyError(
            f"environment variable {name!r} is not registered in repro.env"
        )
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    return raw


def read_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """A registered string variable, or ``default`` when unset."""
    raw = read_raw(name)
    return default if raw is None else raw


def read_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """A registered integer variable, or ``default`` when unset.

    Raises:
        EnvVarError: the value is set but is not an integer.
    """
    raw = read_raw(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise EnvVarError(name, raw, "is not an integer") from None


def read_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """A registered float variable, or ``default`` when unset.

    Raises:
        EnvVarError: the value is set but is not a number.
    """
    raw = read_raw(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise EnvVarError(name, raw, "is not a number") from None
