"""Interned per-node validity keys for incremental (ECO) remapping.

The eco key of a subject node is a dense integer that canonically encodes
*everything the delay-labeling pass can observe* at that node:

* the matching-relevant cone structure — exactly the
  :func:`repro.perf.signature.cone_signature` token tuple, including
  fanin order, DAG sharing back-references and (for exact matching) the
  capped fanout-use counts of interior-bindable nodes, and
* recursively, the eco keys of every other node in the cone (primary
  inputs contribute their arrival time).

Two nodes with equal eco keys — whether in the same subject graph or in
the graphs of two different networks — therefore have byte-identical
match streams (modulo rebinding through the shared canonical cone
ordering, see :mod:`repro.perf.signature`) *and* byte-identical leaf
arrival times, so the labeling pass computes the same best match, the
same arrival and the same tie-breaks at both.  This is the soundness
argument of :func:`repro.eco.eco_remap`: a node of the edited subject
whose key also occurs in the base subject is *clean* and its old label
can be spliced in verbatim; every node whose key is new is *dirty* and
is remapped.  Dirtiness propagates up the fanout cone automatically
because a node's key contains its cone members' keys.

Keys are interned in an :class:`EcoKeyTable` shared between the two
subjects, so the clean test is a dict lookup on small ints.  Interning
compares full tuples (no raw ``hash()`` use), so equal keys imply equal
encodings — there is no collision unsoundness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.match import MatchKind
from repro.library.patterns import PatternSet
from repro.network.subject import SubjectGraph, SubjectNode
from repro.perf.signature import cone_signature

__all__ = [
    "EcoKeyTable",
    "SubjectKeys",
    "compute_subject_keys",
    "pattern_use_cap",
    "subject_use_counts",
]


class EcoKeyTable:
    """Interns structural key tuples into dense integers.

    Shared across the base and edited subjects of one
    :func:`repro.eco.eco_remap` call so equal structures map to equal
    ints and the clean-node test is a plain dict lookup.
    """

    def __init__(self) -> None:
        self._intern: Dict[Tuple[object, ...], int] = {}

    def __len__(self) -> int:
        return len(self._intern)

    def intern(self, value: Tuple[object, ...]) -> int:
        key = self._intern.get(value)
        if key is None:
            key = len(self._intern)
            self._intern[value] = key
        return key


def subject_use_counts(subject: SubjectGraph) -> List[int]:
    """Per-uid fanout-use counts (fanin edges plus PO references).

    Mirrors ``Matcher.attach`` exactly — these counts feed the exact-match
    out-degree tokens of :func:`repro.perf.signature.cone_signature`, so
    they must be computed the same way the matcher computes them.
    """
    uses = [0] * len(subject.nodes)
    for node in subject.nodes:
        for fanin in node.fanins:
            uses[fanin.uid] += 1
    for _, driver in subject.pos:
        uses[driver.uid] += 1
    return uses


def pattern_use_cap(patterns: PatternSet) -> int:
    """``1 + max pattern-side fanout`` — the matcher's signature use cap.

    Counts above every pattern-side fanout all fail the exact-match
    out-degree condition identically, so the signature clamps them to one
    representative value; this replicates ``Matcher._use_cap``.
    """
    cap = 0
    for pattern in patterns.patterns:
        counts: Dict[int, int] = {}
        for node in pattern.nodes:
            for fanin in node.fanins:
                counts[fanin.uid] = counts.get(fanin.uid, 0) + 1
        fanout = max(counts.values(), default=0)
        if fanout > cap:
            cap = fanout
    return 1 + cap


class SubjectKeys:
    """Eco keys and canonical cones for every node of one subject graph.

    Attributes:
        keys: per-uid interned eco key.
        cones: per-uid canonical cone node list (``cone[0]`` is the node
            itself); ``None`` for primary inputs.
    """

    __slots__ = ("keys", "cones")

    def __init__(self, keys: List[int], cones: List[Optional[List[SubjectNode]]]):
        self.keys = keys
        self.cones = cones


def compute_subject_keys(
    subject: SubjectGraph,
    kind: MatchKind,
    arrival_times: Dict[str, float],
    depth_limit: int,
    use_cap: int,
    table: EcoKeyTable,
) -> SubjectKeys:
    """Compute the eco key of every node of ``subject`` in topological order.

    Args:
        subject: the NAND2-INV subject graph.
        kind: match class of the mapping run the keys will gate; exact
            matching folds fanout-use counts into the signatures.
        arrival_times: PI arrival times by name (missing names are 0.0,
            matching the labeling pass).
        depth_limit: the pattern set's ``max_depth``.
        use_cap: :func:`pattern_use_cap` of the pattern set.
        table: shared interning table (pass the same instance for the
            base and the edited subject).
    """
    uses = subject_use_counts(subject) if kind is MatchKind.EXACT else None
    n = len(subject.nodes)
    keys: List[int] = [0] * n
    cones: List[Optional[List[SubjectNode]]] = [None] * n
    for node in subject.topological():
        if node.is_pi:
            arrival = float(arrival_times.get(node.name, 0.0))
            keys[node.uid] = table.intern(("pi", arrival))
            continue
        sig, cone = cone_signature(node, depth_limit, uses=uses, use_cap=use_cap)
        child_keys = tuple(keys[member.uid] for member in cone[1:])
        keys[node.uid] = table.intern((sig, child_keys))
        cones[node.uid] = cone
    return SubjectKeys(keys, cones)
