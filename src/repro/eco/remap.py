"""Diff-aware incremental remapping (``eco_remap``).

Production mapping traffic is dominated by *edits*: small netlist changes
that invalidate only the fanout cones of the touched nodes.  This module
remaps such an edit incrementally:

1. decompose the edited network into its subject graph,
2. compute interned eco keys (:mod:`repro.eco.keys`) for the base run's
   subject and the edited subject over a shared table,
3. label the edited subject with :func:`repro.core.dag_mapper.map_dag`,
   splicing the base run's ``(arrival, area_flow, match)`` verbatim at
   every *clean* node (its key occurs in the base subject) through the
   labeling reuse hook, and running ordinary matching only on the dirty
   region,
4. re-certify the patch with :func:`repro.check.eco.certify_patch`
   (E-series codes), which structurally verifies every spliced and
   remapped match in the final cover.

Correctness contract (enforced by fuzz oracle F011 and the ``eco``
campaign mode): the result is **byte-identical** — same delay, same
area, same mapped-BLIF cover — to a from-scratch ``map_dag`` of the
edited network with the same patterns, kind and engine.  The argument is
an induction over the edited subject in topological order: equal eco
keys imply equal cone structure and equal leaf arrivals, hence the same
match stream (modulo rebinding through the canonical cone ordering) and
bitwise-equal best-match selection; see :mod:`repro.eco.keys`.

The one intentional divergence: a clean node's ``area_flow`` is copied
from the base run even though the edit may have changed fanout counts
elsewhere.  ``area_flow`` is a load heuristic consumed only by area
recovery — never by delay labeling, cover construction, or
certification — so the byte-identity contract (delay, area, cover) is
unaffected; ``eco_remap`` therefore supports the ``delay`` objective
only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

from repro.core.dag_mapper import map_dag
from repro.core.match import Match, Matcher, MatchKind
from repro.core.result import MappingResult
from repro.errors import MappingError
from repro.library.gate import GateLibrary
from repro.library.patterns import PatternSet
from repro.network.bnet import BooleanNetwork
from repro.network.decompose import decompose_network
from repro.network.subject import SubjectGraph, SubjectNode
from repro.check.diagnostics import CheckReport
from repro.eco.keys import (
    EcoKeyTable,
    compute_subject_keys,
    pattern_use_cap,
)

__all__ = ["EcoResult", "eco_remap"]


@dataclass
class EcoResult:
    """Outcome of one :func:`eco_remap` call.

    Attributes:
        result: the mapping of the edited network; byte-identical to a
            from-scratch ``map_dag`` of it.
        nodes_reused: internal subject nodes whose label was spliced in
            from the base run.
        nodes_remapped: internal subject nodes that went through
            ordinary matching (the dirty region).
        reused_uids: uids of the spliced nodes in the edited subject.
        patch_report: the patch-certification report (E-series codes);
            ``None`` when certification was disabled.
        cpu_seconds: wall-clock of the whole incremental run, including
            both key passes (``result.cpu_seconds`` covers only the
            labeling + cover portion).
    """

    result: MappingResult
    nodes_reused: int
    nodes_remapped: int
    reused_uids: FrozenSet[int]
    patch_report: Optional[CheckReport]
    cpu_seconds: float

    @property
    def reuse_fraction(self) -> float:
        total = self.nodes_reused + self.nodes_remapped
        return self.nodes_reused / total if total else 0.0

    def summary(self) -> str:
        res = self.result
        return (
            f"eco {res.netlist.name}: delay={res.delay:.3f} area={res.area:.2f} "
            f"reused={self.nodes_reused} remapped={self.nodes_remapped} "
            f"({100.0 * self.reuse_fraction:.1f}% clean) "
            f"cpu={self.cpu_seconds * 1e3:.1f}ms"
        )


def _require_delay_dag_base(base: MappingResult) -> None:
    if base.mode != "dag":
        raise MappingError(
            "[M005] eco_remap requires a dag-mode base MappingResult "
            f"(map_dag output); got mode {base.mode!r}"
        )
    if base.labels.objective != "delay":
        raise MappingError(
            "[M005] eco_remap supports the 'delay' objective only: clean "
            "nodes splice the base run's area_flow verbatim, which is only "
            "sound when label selection never reads it; got objective "
            f"{base.labels.objective!r}"
        )


def eco_remap(
    base: MappingResult,
    edited: Union[BooleanNetwork, SubjectGraph],
    library: Union[GateLibrary, PatternSet],
    arrival_times: Optional[Dict[str, float]] = None,
    base_arrival_times: Optional[Dict[str, float]] = None,
    max_variants: int = 16,
    decompose: str = "balanced",
    matcher: Optional[Matcher] = None,
    certify: bool = True,
    check: bool = False,
) -> EcoResult:
    """Incrementally remap an edited network against a base mapping.

    Args:
        base: the base network's mapping — a ``map_dag`` result with the
            ``delay`` objective.  Kind and engine are inherited from it.
        edited: the edited network (decomposed with ``decompose`` style)
            or a pre-built subject graph.
        library: the *same* library (or pattern set) the base run used;
            a mismatching library name is rejected with ``M006``.
        arrival_times: PI arrival times for the edited run.
        base_arrival_times: PI arrival times the *base* run was labeled
            with; defaults to ``arrival_times``.  Getting this wrong is
            safe but slow — keys stop matching and everything remaps.
        max_variants: pattern-decomposition variants (when ``library``
            is a raw :class:`GateLibrary`).
        decompose: technology-decomposition style for ``edited``.
        matcher: optional pre-built matcher (same patterns/kind) shared
            across calls to amortise its caches.
        certify: run :func:`repro.check.eco.certify_patch` on the result
            and raise :class:`~repro.errors.CertificateError` when the
            patch report contains errors.
        check: additionally run the full mapping certificate
            (:func:`repro.check.certificate.attach_certificate`) on the
            spliced result, exactly as ``map_dag(check=True)`` would.

    Returns:
        An :class:`EcoResult`; ``result.counters`` carries the
        ``eco_nodes_reused`` / ``eco_nodes_remapped`` split.
    """
    started = time.perf_counter()
    _require_delay_dag_base(base)
    kind = MatchKind(base.match_kind)
    engine = base.engine

    if isinstance(library, PatternSet):
        patterns = library
    else:
        patterns = PatternSet(library, max_variants=max_variants)
    if patterns.library.name != base.library:
        raise MappingError(
            f"[M006] eco_remap library {patterns.library.name!r} does not "
            f"match the base mapping's library {base.library!r}; reuse "
            "across libraries is unsound"
        )

    if isinstance(edited, SubjectGraph):
        new_subject = edited
    else:
        new_subject = decompose_network(edited, style=decompose)

    old_labels = base.labels
    old_subject = old_labels.subject
    if base_arrival_times is None:
        base_arrival_times = arrival_times

    table = EcoKeyTable()
    use_cap = pattern_use_cap(patterns)
    depth_limit = patterns.max_depth
    old_keys = compute_subject_keys(
        old_subject, kind, base_arrival_times or {}, depth_limit, use_cap, table
    )
    new_keys = compute_subject_keys(
        new_subject, kind, arrival_times or {}, depth_limit, use_cap, table
    )

    # First topological occurrence of each key in the base subject is the
    # splice donor; later occurrences are structurally identical anyway.
    donor_of: Dict[int, int] = {}
    for node in old_subject.topological():
        if not node.is_pi:
            donor_of.setdefault(old_keys.keys[node.uid], node.uid)

    reused: Set[int] = set()

    def reuse(node: SubjectNode) -> Optional[Tuple[float, float, Match]]:
        donor_uid = donor_of.get(new_keys.keys[node.uid])
        if donor_uid is None:
            return None
        donor_match = old_labels.best[donor_uid]
        if donor_match is None:
            return None  # pragma: no cover - labeling always sets best
        donor_cone = old_keys.cones[donor_uid]
        new_cone = new_keys.cones[node.uid]
        if donor_cone is None or new_cone is None:
            return None  # pragma: no cover - internal nodes carry cones
        pos_of = {id(member): pos for pos, member in enumerate(donor_cone)}
        try:
            binding = {
                puid: new_cone[pos_of[id(snode)]]
                for puid, snode in donor_match.binding.items()
            }
        except KeyError:
            # A bound node escaped the donor's signature cone (the
            # EXTENDED defensive case of Matcher.matches_at): there is no
            # canonical rebinding, so treat the node as dirty.
            return None
        reused.add(node.uid)
        return (
            old_labels.arrival[donor_uid],
            old_labels.area_flow[donor_uid],
            Match(donor_match.pattern, node, binding),
        )

    result = map_dag(
        new_subject,
        patterns,
        kind=kind,
        arrival_times=arrival_times,
        objective="delay",
        cache=True,
        matcher=matcher,
        check=check,
        engine=engine,
        reuse=reuse,
    )

    n_internal = sum(1 for node in new_subject.nodes if not node.is_pi)
    reused_uids = frozenset(reused)
    patch_report: Optional[CheckReport] = None
    if certify:
        from repro.check.eco import certify_patch

        patch_report = certify_patch(result, reused_uids, base, raise_on_error=True)
    return EcoResult(
        result=result,
        nodes_reused=len(reused_uids),
        nodes_remapped=n_internal - len(reused_uids),
        reused_uids=reused_uids,
        patch_report=patch_report,
        cpu_seconds=time.perf_counter() - started,
    )
