"""Incremental (ECO) remapping: diff-aware reuse of a previous mapping.

Given a base network's :class:`~repro.core.result.MappingResult` and an
edited network, :func:`eco_remap` identifies the clean region via
interned cone-signature keys (:mod:`repro.eco.keys`), splices the base
run's labels there, remaps only the dirty fanout cones, and re-certifies
the patch — with a hard contract that the output is byte-identical
(delay, area, mapped-BLIF cover) to a from-scratch
:func:`~repro.core.dag_mapper.map_dag` of the edited network.

Typed netlist edits themselves live in :mod:`repro.network.edits`; the
seeded edit-pair generator in :mod:`repro.fuzz.generator`; the
differential oracle (F011) in :mod:`repro.fuzz.oracles`; patch
certification (E-series codes) in :mod:`repro.check.eco`.
"""

from repro.eco.keys import (
    EcoKeyTable,
    SubjectKeys,
    compute_subject_keys,
    pattern_use_cap,
    subject_use_counts,
)
from repro.eco.remap import EcoResult, eco_remap

__all__ = [
    "EcoKeyTable",
    "EcoResult",
    "SubjectKeys",
    "compute_subject_keys",
    "eco_remap",
    "pattern_use_cap",
    "subject_use_counts",
]
