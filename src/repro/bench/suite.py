"""The named benchmark suite used by the table experiments.

Each entry pairs an ISCAS-85 circuit from the paper's tables with our
synthetic structural equivalent (see DESIGN.md section 3 for why the
substitution preserves the experiment).  Default parameters are sized so
a pure-Python mapper finishes the full table in minutes; the ``scale``
knob grows instances toward the originals' node counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.bench import circuits, reference
from repro.network.bnet import BooleanNetwork

if TYPE_CHECKING:
    from repro.network.subject import SubjectGraph

__all__ = ["BenchCircuit", "SUITE", "EXTRA", "ALL_CIRCUITS", "TABLE1_NAMES",
           "TABLE23_NAMES", "get_circuit", "get_reference", "suite_circuits",
           "build_subject"]


@dataclass(frozen=True)
class BenchCircuit:
    """One suite entry: a generator plus its reference model."""

    name: str
    iscas: str
    description: str
    build: Callable[[], BooleanNetwork]
    ref: Optional[Callable] = None


def _entry(
    name: str,
    iscas: str,
    description: str,
    build: Callable[[], BooleanNetwork],
    ref: Optional[Callable] = None,
) -> BenchCircuit:
    return BenchCircuit(name, iscas, description, build, ref)


SUITE: Dict[str, BenchCircuit] = {
    entry.name: entry
    for entry in [
        _entry(
            "C432s", "C432", "27-channel priority interrupt controller",
            lambda: circuits.priority_interrupt(27),
            reference.priority_interrupt_ref(27),
        ),
        _entry(
            "C499s", "C499", "SEC decoder, 26 data bits",
            lambda: circuits.sec_corrector(26),
            reference.sec_ref(26),
        ),
        _entry(
            "C880s", "C880", "8-bit 4-function ALU",
            lambda: circuits.alu(8),
            reference.alu_ref(8),
        ),
        _entry(
            "C1355s", "C1355", "SEC decoder, 32 data bits",
            lambda: circuits.sec_corrector(32),
            reference.sec_ref(32),
        ),
        _entry(
            "C1908s", "C1908", "SEC decoder, 16 data bits",
            lambda: circuits.sec_corrector(16),
            reference.sec_ref(16),
        ),
        _entry(
            "C2670s", "C2670", "12-bit adder + comparator + parity",
            lambda: circuits.adder_comparator_mix(12),
            reference.adder_comparator_mix_ref(12),
        ),
        _entry(
            "C3540s", "C3540", "16-bit 4-function ALU",
            lambda: circuits.alu(16),
            reference.alu_ref(16),
        ),
        _entry(
            "C5315s", "C5315", "24-bit adder + comparator + parity",
            lambda: circuits.adder_comparator_mix(24),
            reference.adder_comparator_mix_ref(24),
        ),
        _entry(
            "C6288s", "C6288", "8x8 array multiplier (C6288 is 16x16)",
            lambda: circuits.array_multiplier(8),
            reference.multiplier_ref(8),
        ),
        _entry(
            "C7552s", "C7552", "32-bit adder + comparator + parity",
            lambda: circuits.adder_comparator_mix(32),
            reference.adder_comparator_mix_ref(32),
        ),
    ]
}

#: Table 1 (lib2) maps the full suite, as the paper's Table 1 does.
TABLE1_NAMES: List[str] = list(SUITE)

#: Additional named workloads beyond the paper's tables: structural
#: alternatives (Wallace vs array multiplier, adder families, routing
#: logic) used by the extension experiments and available from the CLI.
EXTRA: Dict[str, BenchCircuit] = {
    entry.name: entry
    for entry in [
        _entry(
            "wallace8", "C6288*", "8x8 Wallace-tree multiplier "
            "(array multiplier's structural twin)",
            lambda: circuits.wallace_multiplier(8),
            reference.multiplier_ref(8),
        ),
        _entry(
            "barrel5", "-", "32-bit logarithmic barrel rotator",
            lambda: circuits.barrel_shifter(5),
            None,
        ),
        _entry(
            "cla16", "-", "16-bit carry-lookahead adder",
            lambda: circuits.carry_lookahead_adder(16),
            reference.ripple_adder_ref(16),
        ),
        _entry(
            "csel16", "-", "16-bit carry-select adder",
            lambda: circuits.carry_select_adder(16),
            reference.ripple_adder_ref(16),
        ),
        _entry(
            "dec6", "-", "6-to-64 decoder with enable",
            lambda: circuits.decoder(6),
            reference.decoder_ref(6),
        ),
        _entry(
            "mux5", "-", "32-to-1 multiplexer tree",
            lambda: circuits.mux_tree(5),
            reference.mux_tree_ref(5),
        ),
        _entry(
            "C6288full", "C6288", "16x16 array multiplier at the real "
            "C6288 scale (~5300 subject nodes)",
            lambda: circuits.array_multiplier(16),
            reference.multiplier_ref(16),
        ),
    ]
}

#: Everything addressable by name (tables suite + extras).
ALL_CIRCUITS: Dict[str, BenchCircuit] = {**SUITE, **EXTRA}

#: Tables 2 and 3 use the five large circuits, matching the paper.
TABLE23_NAMES: List[str] = ["C2670s", "C3540s", "C5315s", "C6288s", "C7552s"]


def get_circuit(name: str) -> BooleanNetwork:
    """Build a suite or extra circuit by name."""
    return ALL_CIRCUITS[name].build()


def get_reference(name: str) -> Optional[Callable]:
    """Reference model of a named circuit (None when not applicable)."""
    return ALL_CIRCUITS[name].ref


def suite_circuits(
    names: Optional[List[str]] = None,
) -> Iterator[Tuple[BenchCircuit, BooleanNetwork]]:
    """Yield (entry, network) pairs for the requested suite subset."""
    for name in names or TABLE1_NAMES:
        entry = ALL_CIRCUITS[name]
        yield entry, entry.build()


def build_subject(
    name: str, style: str = "balanced"
) -> Tuple[BooleanNetwork, "SubjectGraph"]:
    """Build a named circuit and decompose it into a subject graph.

    The (circuit, subject) pair is what every mapper benchmark needs;
    centralising it keeps bench scripts and perf tests in lockstep with
    the table experiments' decomposition defaults.
    """
    from repro.network.decompose import decompose_network

    net = ALL_CIRCUITS[name].build()
    return net, decompose_network(net, style=style)
