"""Benchmark circuits: synthetic ISCAS-85 equivalents and the suite.

The paper evaluates on MCNC/ISCAS-85 netlists (C2670...C7552) which are
not redistributable here; :mod:`repro.bench.circuits` generates
parameterised structural equivalents (array multipliers, carry-lookahead
adders, ALUs, error-correcting parity networks, priority-interrupt logic,
comparators) whose reconvergent, multi-fanout structure exercises the same
mapping behaviour.  :mod:`repro.bench.suite` names the concrete instances
used by the table experiments, and :mod:`repro.bench.reference` provides
arithmetic reference models for functional verification.
"""

from repro.bench import circuits, reference
from repro.bench.suite import SUITE, BenchCircuit, get_circuit, suite_circuits

__all__ = [
    "circuits",
    "reference",
    "SUITE",
    "BenchCircuit",
    "get_circuit",
    "suite_circuits",
]
