"""Parameterised generators of benchmark Boolean networks.

Each generator returns a :class:`BooleanNetwork` with documented pin
names (LSB-first bit vectors named ``a0, a1, ...``).  The family mirrors
the ISCAS-85 suite the paper maps (see DESIGN.md section 3 for the
correspondence): C6288 *is* a 16x16 array multiplier, C499/C1355 are
32-bit single-error-correcting networks, C880/C3540 are ALUs, C432 is a
priority interrupt controller, and C2670/C7552 mix adders, comparators
and parity trees.  All generators are functionally verified against the
arithmetic models in :mod:`repro.bench.reference` by the test suite.

Sequential generators (:func:`lfsr`, :func:`accumulator`,
:func:`register_boundaries`) provide workloads for the Section 4
retiming experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.bnet import BooleanNetwork

__all__ = [
    "c17",
    "ripple_adder",
    "carry_lookahead_adder",
    "carry_select_adder",
    "array_multiplier",
    "wallace_multiplier",
    "booth_multiplier",
    "barrel_shifter",
    "crc_step",
    "alu",
    "parity_tree",
    "sec_corrector",
    "priority_interrupt",
    "comparator",
    "mux_tree",
    "decoder",
    "adder_comparator_mix",
    "random_logic",
    "lfsr",
    "accumulator",
    "johnson_counter",
    "multiply_accumulate",
    "register_boundaries",
]


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------


def _bus(net: BooleanNetwork, prefix: str, width: int) -> List[str]:
    return [net.add_pi(f"{prefix}{i}") for i in range(width)]


def _fa(
    net: BooleanNetwork,
    a: str,
    b: str,
    cin: str,
    tag: str,
    sum_name: Optional[str] = None,
) -> Tuple[str, str]:
    """Full adder; returns (sum, carry-out) signal names."""
    s = net.add_node(sum_name or f"{tag}_s", f"{a}^{b}^{cin}")
    c = net.add_node(f"{tag}_c", f"{a}*{b} + {cin}*({a}^{b})")
    return s, c


def _ha(
    net: BooleanNetwork,
    a: str,
    b: str,
    tag: str,
    sum_name: Optional[str] = None,
) -> Tuple[str, str]:
    """Half adder; returns (sum, carry-out)."""
    s = net.add_node(sum_name or f"{tag}_s", f"{a}^{b}")
    c = net.add_node(f"{tag}_c", f"{a}*{b}")
    return s, c


def _reduce_tree(
    net: BooleanNetwork, signals: Sequence[str], op: str, tag: str
) -> str:
    """Balanced binary reduction with operator ``op`` ('^', '*' or '+')."""
    level = list(signals)
    if not level:
        raise ValueError("reduction of zero signals")
    round_idx = 0
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                net.add_node(
                    f"{tag}_{round_idx}_{i // 2}",
                    f"{level[i]}{op}{level[i + 1]}",
                )
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        round_idx += 1
    return level[0]


def _xor_tree(net: BooleanNetwork, signals: Sequence[str], tag: str) -> str:
    return _reduce_tree(net, signals, "^", tag)


def _and_tree(net: BooleanNetwork, signals: Sequence[str], tag: str) -> str:
    return _reduce_tree(net, signals, "*", tag)


def _or_tree(net: BooleanNetwork, signals: Sequence[str], tag: str) -> str:
    return _reduce_tree(net, signals, "+", tag)


# ----------------------------------------------------------------------
# Small classic
# ----------------------------------------------------------------------


def c17() -> BooleanNetwork:
    """The actual ISCAS-85 c17: six NAND2 gates, 5 inputs, 2 outputs."""
    net = BooleanNetwork("c17")
    for pin in ("g1", "g2", "g3", "g6", "g7"):
        net.add_pi(pin)
    net.add_node("g10", "!(g1*g3)")
    net.add_node("g11", "!(g3*g6)")
    net.add_node("g16", "!(g2*g11)")
    net.add_node("g19", "!(g11*g7)")
    net.add_node("g22", "!(g10*g16)")
    net.add_node("g23", "!(g16*g19)")
    net.add_po("g22")
    net.add_po("g23")
    return net


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------


def ripple_adder(width: int) -> BooleanNetwork:
    """Ripple-carry adder: a + b + cin; outputs ``s0..s{w-1}``, ``cout``."""
    net = BooleanNetwork(f"rca{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    carry = net.add_pi("cin")
    for i in range(width):
        s, carry = _fa(net, a[i], b[i], carry, f"fa{i}", sum_name=f"s{i}")
        net.add_po(s)
    net.add_po(net.add_node("cout", f"{carry}^CONST0"))
    return net


def carry_lookahead_adder(width: int, group: int = 4) -> BooleanNetwork:
    """Group carry-lookahead adder; heavy reconvergence in the carry logic.

    Outputs ``s0..s{w-1}``, ``cout``.
    """
    net = BooleanNetwork(f"cla{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    cin = net.add_pi("cin")
    gen = [net.add_node(f"g{i}", f"{a[i]}*{b[i]}") for i in range(width)]
    pro = [net.add_node(f"p{i}", f"{a[i]}^{b[i]}") for i in range(width)]
    carries = [cin]
    for base in range(0, width, group):
        size = min(group, width - base)
        c = carries[-1]
        for i in range(size):
            idx = base + i
            # c_{idx+1} = g_idx + p_idx g_{idx-1} + ... + (p...p) c_base
            terms = []
            for j in range(i, -1, -1):
                lits = [gen[base + j]] + [
                    pro[base + t] for t in range(j + 1, i + 1)
                ]
                terms.append("*".join(lits))
            terms.append("*".join([pro[base + t] for t in range(i + 1)] + [c]))
            carries.append(net.add_node(f"c{idx + 1}", " + ".join(terms)))
    for i in range(width):
        net.add_po(net.add_node(f"s{i}", f"{pro[i]}^{carries[i]}"))
    net.add_po(net.add_node("cout", f"{carries[width]}^CONST0"))
    return net


def carry_select_adder(width: int, group: int = 4) -> BooleanNetwork:
    """Carry-select adder: duplicated per-group chains + carry muxes.

    Outputs ``s0..s{w-1}``, ``cout``.
    """
    net = BooleanNetwork(f"csel{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    carry = net.add_pi("cin")
    sums: List[str] = []
    for base in range(0, width, group):
        size = min(group, width - base)
        variant: Dict[int, Tuple[List[str], str]] = {}
        for assumed in (0, 1):
            c = net.add_node(f"k{base}_{assumed}", "CONST1" if assumed else "CONST0")
            local: List[str] = []
            for i in range(size):
                idx = base + i
                s, c = _fa(net, a[idx], b[idx], c, f"fa{idx}_{assumed}")
                local.append(s)
            variant[assumed] = (local, c)
        for i in range(size):
            s0, s1 = variant[0][0][i], variant[1][0][i]
            sums.append(
                net.add_node(f"s{base + i}", f"{s1}*{carry} + {s0}*!{carry}")
            )
        carry = net.add_node(
            f"c{base + size}",
            f"{variant[1][1]}*{carry} + {variant[0][1]}*!{carry}",
        )
    for s in sums:
        net.add_po(s)
    net.add_po(net.add_node("cout", f"{carry}^CONST0"))
    return net


# ----------------------------------------------------------------------
# Multiplier (C6288 family)
# ----------------------------------------------------------------------


def array_multiplier(width_a: int, width_b: Optional[int] = None) -> BooleanNetwork:
    """Array multiplier with row-ripple accumulation (C6288 is 16x16).

    Outputs ``p0 .. p{wa+wb-1}`` = a * b (unsigned).
    """
    width_b = width_b if width_b is not None else width_a
    if width_a < 1 or width_b < 1:
        raise ValueError("multiplier widths must be positive")
    net = BooleanNetwork(f"mult{width_a}x{width_b}")
    a = _bus(net, "a", width_a)
    b = _bus(net, "b", width_b)
    pp = [
        [net.add_node(f"pp{i}_{j}", f"{a[j]}*{b[i]}") for j in range(width_a)]
        for i in range(width_b)
    ]
    outputs: List[str] = []
    # acc[t] holds the running sum bit at position (row index) + t.
    acc: List[str] = list(pp[0])
    for i in range(1, width_b):
        outputs.append(acc[0])  # bit position i-1 is finalised
        shifted = acc[1:]
        new_acc: List[str] = []
        carry: Optional[str] = None
        for j in range(width_a):
            addends = [pp[i][j]]
            if j < len(shifted):
                addends.append(shifted[j])
            if carry is not None:
                addends.append(carry)
            tag = f"r{i}_{j}"
            if len(addends) == 1:
                new_acc.append(addends[0])
                carry = None
            elif len(addends) == 2:
                s, carry = _ha(net, addends[0], addends[1], tag)
                new_acc.append(s)
            else:
                s, carry = _fa(net, addends[0], addends[1], addends[2], tag)
                new_acc.append(s)
        if carry is not None:
            new_acc.append(carry)
        acc = new_acc
    outputs.extend(acc)
    while len(outputs) < width_a + width_b:
        outputs.append(net.add_node(f"zero{len(outputs)}", "CONST0"))
    for idx, sig in enumerate(outputs[: width_a + width_b]):
        net.add_po(net.add_node(f"p{idx}", f"{sig}^CONST0"))
    return net


def wallace_multiplier(width_a: int, width_b: Optional[int] = None) -> BooleanNetwork:
    """Wallace-tree multiplier: column-wise 3:2 compression + final adder.

    Same function as :func:`array_multiplier` but with a logarithmic-depth
    reduction tree — structurally very different, which makes the pair a
    good subject-graph-sensitivity workload (paper Section 4).
    Outputs ``p0 .. p{wa+wb-1}``.
    """
    width_b = width_b if width_b is not None else width_a
    if width_a < 1 or width_b < 1:
        raise ValueError("multiplier widths must be positive")
    net = BooleanNetwork(f"wallace{width_a}x{width_b}")
    a = _bus(net, "a", width_a)
    b = _bus(net, "b", width_b)
    n_out = width_a + width_b
    columns: List[List[str]] = [[] for _ in range(n_out)]
    for i in range(width_b):
        for j in range(width_a):
            columns[i + j].append(
                net.add_node(f"pp{i}_{j}", f"{a[j]}*{b[i]}")
            )
    # 3:2 / 2:2 compression rounds until every column has <= 2 bits.
    round_idx = 0
    while any(len(col) > 2 for col in columns):
        next_columns: List[List[str]] = [[] for _ in range(n_out)]
        for pos, col in enumerate(columns):
            k = 0
            idx = 0
            while len(col) - idx >= 3:
                s, c = _fa(net, col[idx], col[idx + 1], col[idx + 2],
                           f"w{round_idx}_{pos}_{k}")
                next_columns[pos].append(s)
                if pos + 1 < n_out:
                    next_columns[pos + 1].append(c)
                idx += 3
                k += 1
            if len(col) - idx == 2 and len(col) > 3:
                s, c = _ha(net, col[idx], col[idx + 1],
                           f"w{round_idx}_{pos}_{k}")
                next_columns[pos].append(s)
                if pos + 1 < n_out:
                    next_columns[pos + 1].append(c)
                idx += 2
            next_columns[pos].extend(col[idx:])
        columns = next_columns
        round_idx += 1
    # Final carry-propagate addition over the two remaining rows.
    carry: Optional[str] = None
    for pos in range(n_out):
        col = list(columns[pos])
        if carry is not None:
            col.append(carry)
        tag = f"cpa{pos}"
        if not col:
            net.add_po(net.add_node(f"p{pos}", "CONST0"))
            carry = None
        elif len(col) == 1:
            net.add_po(net.add_node(f"p{pos}", f"{col[0]}^CONST0"))
            carry = None
        elif len(col) == 2:
            s, carry = _ha(net, col[0], col[1], tag, sum_name=f"p{pos}")
            net.add_po(s)
        else:
            s, carry = _fa(net, col[0], col[1], col[2], tag, sum_name=f"p{pos}")
            net.add_po(s)
    return net


def booth_multiplier(width: int) -> BooleanNetwork:
    """Radix-4 Booth multiplier (unsigned a * b, third multiplier shape).

    Booth digits d_i in {-2,-1,0,1,2} come from overlapping triplets of
    ``b``; each row is the two's complement of 0/a/2a over 2*width bits
    (complement via XOR with the sign, +1 injected as the row adder's
    carry-in).  Outputs ``p0 .. p{2w-1}``.
    """
    if width < 1:
        raise ValueError("width must be positive")
    net = BooleanNetwork(f"booth{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    total = 2 * width
    n_digits = width // 2 + 1

    def b_at(index: int) -> Optional[str]:
        if 0 <= index < width:
            return b[index]
        return None

    def a_at(index: int) -> Optional[str]:
        if 0 <= index < width:
            return a[index]
        return None

    acc: List[Optional[str]] = [None] * total  # None == constant 0
    for i in range(n_digits):
        lo, mid, hi = b_at(2 * i - 1), b_at(2 * i), b_at(2 * i + 1)
        # one = lo XOR mid; two = hi & !mid & !lo | !hi & mid & lo;
        # neg = hi.  Missing bits are constant 0.
        terms = []
        if lo and mid:
            one = net.add_node(f"bd{i}_one", f"{lo}^{mid}")
        elif lo or mid:
            one = lo or mid
        else:
            one = None
        if hi:
            neg = hi
            lo_e = lo if lo else "CONST0"
            mid_e = mid if mid else "CONST0"
            two = net.add_node(
                f"bd{i}_two",
                f"{hi}*!{mid_e}*!{lo_e} + !{hi}*{mid_e}*{lo_e}",
            )
        else:
            neg = None
            two = (
                net.add_node(f"bd{i}_two", f"{mid}*{lo}")
                if (lo and mid)
                else None
            )
        # Row bits y_j = ((a_j & one) | (a_{j-1} & two)) ^ neg over the
        # full 2w bits (sign extension falls out of the XOR).
        row: List[Optional[str]] = []
        for j in range(total - 2 * i):
            parts = []
            aj, ajm1 = a_at(j), a_at(j - 1)
            if one and aj:
                parts.append(f"{aj}*{one}")
            if two and ajm1:
                parts.append(f"{ajm1}*{two}")
            if parts:
                x = net.add_node(f"r{i}_{j}x", " + ".join(parts))
                bit = (
                    net.add_node(f"r{i}_{j}", f"{x}^{neg}") if neg else x
                )
            else:
                bit = neg  # x == 0: y = neg (sign fill); None if neg is None
            row.append(bit)
        # acc[2i..] += row + neg (carry-in injects the +1 of -x = ~x + 1).
        carry: Optional[str] = neg
        for j, bit in enumerate(row):
            pos = 2 * i + j
            addends = [s for s in (acc[pos], bit, carry) if s is not None]
            tag = f"bs{i}_{pos}"
            if not addends:
                acc[pos] = None
                carry = None
            elif len(addends) == 1:
                acc[pos] = addends[0]
                carry = None
            elif len(addends) == 2:
                acc[pos], carry = _ha(net, addends[0], addends[1], tag)
            else:
                acc[pos], carry = _fa(net, *addends, tag)
        # Any carry beyond 2w bits is dropped (arithmetic is mod 2^{2w}).
    for pos in range(total):
        source = acc[pos] if acc[pos] is not None else "CONST0"
        net.add_po(net.add_node(f"p{pos}", f"{source}^CONST0"))
    return net


def crc_step(width: int = 8, data_bits: int = 8,
             poly: Optional[int] = None) -> BooleanNetwork:
    """Parallel CRC update: new state after shifting in ``data_bits`` bits.

    Inputs ``s0..`` (current CRC register, LSB first) and ``d0..`` (data,
    processed MSB first, i.e. ``d{k-1}`` enters the register first);
    outputs ``ns0..``.  ``poly`` is the feedback polynomial without the
    leading term (default: CRC-8 0x07 style for width 8, else low bits).
    """
    if poly is None:
        poly = 0x07 if width == 8 else (1 << max(0, width // 2)) | 1
    net = BooleanNetwork(f"crc{width}x{data_bits}")
    state = _bus(net, "s", width)
    data = _bus(net, "d", data_bits)
    current: List[List[str]] = [[bit] for bit in state]  # XOR sets per position
    for step in range(data_bits - 1, -1, -1):
        feedback = current[width - 1] + [data[step]]
        nxt: List[List[str]] = []
        for j in range(width):
            terms = list(current[j - 1]) if j > 0 else []
            if (poly >> j) & 1:
                terms = terms + feedback
            nxt.append(terms)
        current = nxt
    for j in range(width):
        # Reduce each XOR set; duplicated terms cancel in pairs.
        counts: Dict[str, int] = {}
        for term in current[j]:
            counts[term] = counts.get(term, 0) + 1
        odd = [term for term, c in counts.items() if c % 2]
        if odd:
            root = _xor_tree(net, odd, f"c{j}")
            net.add_po(net.add_node(f"ns{j}", f"{root}^CONST0"))
        else:
            net.add_po(net.add_node(f"ns{j}", "CONST0"))
    return net


def barrel_shifter(select_bits: int) -> BooleanNetwork:
    """Logarithmic barrel rotator: ``y = d rotated left by s`` (C7552-ish
    mux-heavy structure).  Inputs ``d0..d{2^k-1}``, ``s0..s{k-1}``;
    outputs ``y0..``.
    """
    net = BooleanNetwork(f"barrel{select_bits}")
    width = 1 << select_bits
    data = _bus(net, "d", width)
    sel = _bus(net, "s", select_bits)
    level = list(data)
    for k in range(select_bits):
        shift = 1 << k
        nxt = []
        for pos in range(width):
            src_shifted = level[(pos - shift) % width]
            nxt.append(
                net.add_node(
                    f"l{k}_{pos}",
                    f"{src_shifted}*{sel[k]} + {level[pos]}*!{sel[k]}",
                )
            )
        level = nxt
    for pos in range(width):
        net.add_po(net.add_node(f"y{pos}", f"{level[pos]}^CONST0"))
    return net


# ----------------------------------------------------------------------
# ALU (C880 / C3540 family)
# ----------------------------------------------------------------------


def alu(width: int) -> BooleanNetwork:
    """A 4-function ALU (74181 spirit; the C880/C3540 family).

    Select ``s1 s0``: 00 -> a+b+cin, 01 -> a + ~b + cin (subtract when
    cin=1), 10 -> a AND b, 11 -> a OR b.  Outputs ``f0..f{w-1}``,
    ``cout`` (arithmetic modes only), ``zero``.
    """
    net = BooleanNetwork(f"alu{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    s0 = net.add_pi("s0")
    s1 = net.add_pi("s1")
    cin = net.add_pi("cin")
    arith = net.add_node("arith", f"!{s1}")
    bsel = [net.add_node(f"bx{i}", f"{b[i]}^{s0}") for i in range(width)]
    carry = cin
    outs: List[str] = []
    for i in range(width):
        s, carry = _fa(net, a[i], bsel[i], carry, f"fa{i}")
        logic = net.add_node(
            f"lg{i}", f"{a[i]}*{b[i]}*!{s0} + ({a[i]}+{b[i]})*{s0}"
        )
        outs.append(net.add_node(f"f{i}", f"{s}*{arith} + {logic}*!{arith}"))
    for f in outs:
        net.add_po(f)
    net.add_po(net.add_node("cout", f"{carry}*{arith}"))
    any_set = _or_tree(net, outs, "z")
    net.add_po(net.add_node("zero", f"!{any_set}"))
    return net


# ----------------------------------------------------------------------
# Parity / error correction (C499 / C1355 / C1908 family)
# ----------------------------------------------------------------------


def parity_tree(width: int) -> BooleanNetwork:
    """XOR parity of ``width`` inputs; output ``parity``."""
    net = BooleanNetwork(f"parity{width}")
    bits = _bus(net, "d", width)
    root = _xor_tree(net, bits, "t")
    net.add_po(net.add_node("parity", f"{root}^CONST0"))
    return net


def hamming_layout(data_bits: int) -> Tuple[int, List[int]]:
    """(check-bit count, coded position of each data bit) for SEC codes."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    positions: List[int] = []
    pos = 1
    while len(positions) < data_bits:
        if pos & (pos - 1):  # not a power of two: a data position
            positions.append(pos)
        pos += 1
    return r, positions


def sec_corrector(data_bits: int = 16) -> BooleanNetwork:
    """Single-error-correcting Hamming decoder (C499/C1355 family).

    Inputs ``d0..`` (received data) and ``c0..`` (received check bits);
    outputs syndrome ``y0..y{r-1}`` and corrected data ``o0..``.
    """
    net = BooleanNetwork(f"sec{data_bits}")
    r, positions = hamming_layout(data_bits)
    data = _bus(net, "d", data_bits)
    checks = _bus(net, "c", r)
    syndrome: List[str] = []
    for j in range(r):
        covered = [data[i] for i, pos in enumerate(positions) if (pos >> j) & 1]
        tree = _xor_tree(net, covered, f"sy{j}")
        syndrome.append(net.add_node(f"y{j}", f"{tree}^{checks[j]}"))
    for y in syndrome:
        net.add_po(y)
    for i, pos in enumerate(positions):
        lits = [
            syndrome[j] if (pos >> j) & 1 else f"!{syndrome[j]}"
            for j in range(r)
        ]
        hit = net.add_node(f"hit{i}", "*".join(lits))
        net.add_po(net.add_node(f"o{i}", f"{data[i]}^{hit}"))
    return net


# ----------------------------------------------------------------------
# Priority interrupt controller (C432 family)
# ----------------------------------------------------------------------


def priority_interrupt(channels: int = 27) -> BooleanNetwork:
    """Masked priority encoder + grant decode (C432 family).

    Inputs: requests ``r0..`` and active-low masks ``m0..`` (channel i is
    active when ``ri & !mi``); channel ``channels-1`` has top priority.
    Outputs: ``any`` (some channel active), binary index ``v0..`` of the
    highest active channel, and the decoded grant parity ``gp``.
    """
    net = BooleanNetwork(f"pint{channels}")
    req = _bus(net, "r", channels)
    mask = _bus(net, "m", channels)
    active = [
        net.add_node(f"act{i}", f"{req[i]}*!{mask[i]}") for i in range(channels)
    ]
    # higher[i] = OR of active[j] for j > i (suffix OR chain).
    higher: List[str] = [""] * channels
    running = None
    for i in range(channels - 1, -1, -1):
        higher[i] = running if running is not None else ""
        running = (
            active[i]
            if running is None
            else net.add_node(f"hi{i}", f"{active[i]}+{running}")
        )
    grants: List[str] = []
    for i in range(channels):
        if higher[i]:
            grants.append(net.add_node(f"gr{i}", f"{active[i]}*!{higher[i]}"))
        else:
            grants.append(active[i])  # top-priority channel
    any_active = running  # OR over all
    net.add_po(net.add_node("any", f"{any_active}^CONST0"))
    bits = max(1, (channels - 1).bit_length())
    for k in range(bits):
        group = [grants[i] for i in range(channels) if (i >> k) & 1]
        if group:
            net.add_po(net.add_node(f"v{k}", _or_tree(net, group, f"vt{k}") + "+CONST0"))
        else:
            net.add_po(net.add_node(f"v{k}", "CONST0"))
    net.add_po(net.add_node("gp", f"{_xor_tree(net, grants, 'gpt')}^CONST0"))
    return net


# ----------------------------------------------------------------------
# Comparators, muxes, decoders
# ----------------------------------------------------------------------


def comparator(width: int) -> BooleanNetwork:
    """Unsigned magnitude comparator; outputs ``eq``, ``lt``, ``gt``."""
    net = BooleanNetwork(f"cmp{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    eq_bits = [
        net.add_node(f"e{i}", f"{a[i]}*{b[i]} + !{a[i]}*!{b[i]}")
        for i in range(width)
    ]
    # suffix_eq[i] = AND of eq_bits[j] for j > i.
    suffix: List[Optional[str]] = [None] * width
    running: Optional[str] = None
    for i in range(width - 1, -1, -1):
        suffix[i] = running
        running = (
            eq_bits[i]
            if running is None
            else net.add_node(f"se{i}", f"{eq_bits[i]}*{running}")
        )
    eq = running
    lt_terms = []
    for i in range(width):
        term = f"!{a[i]}*{b[i]}"
        if suffix[i] is not None:
            term += f"*{suffix[i]}"
        lt_terms.append(net.add_node(f"ltt{i}", term))
    lt = _or_tree(net, lt_terms, "lt_or")
    net.add_po(net.add_node("eq", f"{eq}^CONST0"))
    net.add_po(net.add_node("lt", f"{lt}^CONST0"))
    net.add_po(net.add_node("gt", f"!({eq}+{lt})"))
    return net


def mux_tree(select_bits: int) -> BooleanNetwork:
    """2^s-to-1 multiplexer tree; inputs ``d*``, selects ``s*``, output ``y``."""
    net = BooleanNetwork(f"mux{select_bits}")
    data = _bus(net, "d", 1 << select_bits)
    sel = _bus(net, "s", select_bits)
    level = list(data)
    for k in range(select_bits):
        nxt = []
        for i in range(0, len(level), 2):
            nxt.append(
                net.add_node(
                    f"m{k}_{i // 2}",
                    f"{level[i + 1]}*{sel[k]} + {level[i]}*!{sel[k]}",
                )
            )
        level = nxt
    net.add_po(net.add_node("y", f"{level[0]}^CONST0"))
    return net


def decoder(width: int) -> BooleanNetwork:
    """Binary decoder with enable; outputs ``q0..q{2^w-1}``."""
    net = BooleanNetwork(f"dec{width}")
    sel = _bus(net, "s", width)
    en = net.add_pi("en")
    for code in range(1 << width):
        lits = [en] + [
            sel[j] if (code >> j) & 1 else f"!{sel[j]}" for j in range(width)
        ]
        net.add_po(net.add_node(f"q{code}", "*".join(lits)))
    return net


# ----------------------------------------------------------------------
# Composite datapaths (C2670 / C5315 / C7552 family)
# ----------------------------------------------------------------------


def adder_comparator_mix(width: int) -> BooleanNetwork:
    """Adder + comparator + parity datapath (C2670/C7552 family).

    Computes ``sum = a + b + cin``, compares the sum word against bus
    ``t``, and takes parities of both operands.  Outputs ``s*``, ``cout``,
    ``eq``, ``lt``, ``pa``, ``pb``.
    """
    net = BooleanNetwork(f"acm{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    t = _bus(net, "t", width)
    carry = net.add_pi("cin")
    sums: List[str] = []
    for i in range(width):
        s, carry = _fa(net, a[i], b[i], carry, f"fa{i}", sum_name=f"s{i}")
        sums.append(s)
        net.add_po(s)
    net.add_po(net.add_node("cout", f"{carry}^CONST0"))
    # Compare sum against t.
    eq_bits = [
        net.add_node(f"e{i}", f"{sums[i]}*{t[i]} + !{sums[i]}*!{t[i]}")
        for i in range(width)
    ]
    suffix: List[Optional[str]] = [None] * width
    running: Optional[str] = None
    for i in range(width - 1, -1, -1):
        suffix[i] = running
        running = (
            eq_bits[i]
            if running is None
            else net.add_node(f"se{i}", f"{eq_bits[i]}*{running}")
        )
    lt_terms = []
    for i in range(width):
        term = f"!{sums[i]}*{t[i]}"
        if suffix[i] is not None:
            term += f"*{suffix[i]}"
        lt_terms.append(net.add_node(f"ltt{i}", term))
    net.add_po(net.add_node("eq", f"{running}^CONST0"))
    net.add_po(net.add_node("lt", _or_tree(net, lt_terms, "lt_or") + "^CONST0"))
    net.add_po(net.add_node("pa", _xor_tree(net, a, "pa_t") + "^CONST0"))
    net.add_po(net.add_node("pb", _xor_tree(net, b, "pb_t") + "^CONST0"))
    return net


def random_logic(
    n_inputs: int, n_nodes: int, seed: int = 1, n_outputs: Optional[int] = None
) -> BooleanNetwork:
    """Random 2-input gate DAG (fuzz workloads for property tests).

    A thin wrapper over :func:`repro.fuzz.generator.random_dag` with the
    generator's default shape knobs.  Two invariants hold for *every*
    parameter combination (the old inline construction violated both for
    small ``n_nodes``): no primary input dangles unread, and no internal
    node is dead — everything reaches a primary output.  The seed and
    every knob are recorded in the network name, so a circuit rebuilds
    bit-identically from its name alone.
    """
    from repro.fuzz.generator import FuzzConfig, random_dag

    config = FuzzConfig(
        n_inputs=n_inputs, n_nodes=n_nodes, n_outputs=n_outputs, seed=seed
    )
    return random_dag(
        config, name=f"rand{n_inputs}_{n_nodes}_{seed}_o{config.outputs}"
    )


# ----------------------------------------------------------------------
# Sequential workloads (Section 4)
# ----------------------------------------------------------------------


def lfsr(width: int, taps: Optional[Sequence[int]] = None) -> BooleanNetwork:
    """Galois-style LFSR with a serial input; outputs the register bits.

    next q0 = (xor of tapped bits) ^ sin;  next q_i = q_{i-1}.
    """
    net = BooleanNetwork(f"lfsr{width}")
    sin = net.add_pi("sin")
    taps = list(taps) if taps is not None else [width - 1, 0]
    q = [f"q{i}" for i in range(width)]
    feedback_terms = [q[t] for t in taps] + [sin]
    # Declare latches first so their outputs exist as pseudo-PIs.
    # Latch input signals are combinational nodes defined below.
    for i in range(width):
        net.add_latch(f"nq{i}", q[i], init=0)
    net.add_node("fb", "^".join(feedback_terms))
    net.add_node("nq0", "fb^CONST0")
    for i in range(1, width):
        net.add_node(f"nq{i}", f"{q[i - 1]}^CONST0")
    for i in range(width):
        net.add_po(q[i])
    return net


def accumulator(width: int) -> BooleanNetwork:
    """Registered accumulator: acc <= acc + in; outputs the register bits."""
    net = BooleanNetwork(f"acc{width}")
    data = _bus(net, "in", width)
    q = [f"q{i}" for i in range(width)]
    for i in range(width):
        net.add_latch(f"nq{i}", q[i], init=0)
    carry: Optional[str] = None
    for i in range(width):
        if carry is None:
            s, carry = _ha(net, data[i], q[i], f"fa{i}")
        else:
            s, carry = _fa(net, data[i], q[i], carry, f"fa{i}")
        net.add_node(f"nq{i}", f"{s}^CONST0")
        net.add_po(q[i])
    return net


def johnson_counter(width: int) -> BooleanNetwork:
    """Johnson (twisted-ring) counter with enable; outputs the ring bits."""
    net = BooleanNetwork(f"johnson{width}")
    en = net.add_pi("en")
    q = [f"q{i}" for i in range(width)]
    for i in range(width):
        net.add_latch(f"nq{i}", q[i], init=0)
    # nq0 = en ? !q[last] : q0 ; nq_i = en ? q_{i-1} : q_i.
    net.add_node("nq0", f"!{q[width - 1]}*{en} + {q[0]}*!{en}")
    for i in range(1, width):
        net.add_node(f"nq{i}", f"{q[i - 1]}*{en} + {q[i]}*!{en}")
    for i in range(width):
        net.add_po(q[i])
    return net


def multiply_accumulate(width: int) -> BooleanNetwork:
    """MAC: acc <= acc + a * b (a Wallace product feeding an adder).

    The accumulator is ``2*width`` bits wide; outputs the register bits.
    """
    product = wallace_multiplier(width)
    total = 2 * width
    net = BooleanNetwork(f"mac{width}")
    a = _bus(net, "a", width)
    b = _bus(net, "b", width)
    q = [f"q{i}" for i in range(total)]
    for i in range(total):
        net.add_latch(f"nq{i}", q[i], init=0)
    # Inline the multiplier's logic under a namespace.
    rename = {pi: pi for pi in product.pis}
    for node in product.topological_order():
        fanins = [rename[f] for f in node.fanins]
        rename[node.name] = net.add_node(f"m_{node.name}", node.tt, fanins)
    product_bits = [rename[po] for po in product.pos]
    carry: Optional[str] = None
    for i in range(total):
        if carry is None:
            s, carry = _ha(net, product_bits[i], q[i], f"acc{i}")
        else:
            s, carry = _fa(net, product_bits[i], q[i], carry, f"acc{i}")
        net.add_node(f"nq{i}", f"{s}^CONST0")
        net.add_po(q[i])
    return net


def register_boundaries(
    net: BooleanNetwork, output_stages: int = 1, name: Optional[str] = None
) -> BooleanNetwork:
    """Wrap a combinational network with input and output registers.

    Produces a sequential circuit whose combinational core is ``net``;
    retiming can then move the boundary registers into the core — the
    paper's Section 4 scenario.  Outputs are the final register stages.
    """
    if not net.is_combinational():
        raise ValueError("register_boundaries expects a combinational network")
    out = BooleanNetwork(name or f"{net.name}_reg")
    for pi in net.pis:
        out.add_pi(pi)
        out.add_latch(pi, f"{pi}__r", init=0)
    for node in net.topological_order():
        fanins = [
            f"{f}__r" if net.is_pi(f) else f"{f}__c" for f in node.fanins
        ]
        out.add_node(f"{node.name}__c", node.tt, fanins)
    for idx, po in enumerate(net.pos):
        signal = f"{po}__r" if net.is_pi(po) else f"{po}__c"
        for stage in range(output_stages):
            reg = f"{po}__o{stage}"
            out.add_latch(signal, reg, init=0)
            signal = reg
        out.add_po(signal)
    return out
