"""Arithmetic reference models for the benchmark generators.

Each ``*_ref`` factory returns a function mapping an input assignment
(signal name -> 0/1) to the expected output assignment, computed with
plain Python integer arithmetic.  The test suite drives the generated
networks and these models with the same random vectors and requires exact
agreement — the functional ground truth for the whole benchmark family.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.circuits import hamming_layout

Assignment = Dict[str, int]
Ref = Callable[[Assignment], Assignment]

__all__ = [
    "get_word",
    "put_word",
    "ripple_adder_ref",
    "multiplier_ref",
    "alu_ref",
    "parity_ref",
    "sec_ref",
    "priority_interrupt_ref",
    "comparator_ref",
    "mux_tree_ref",
    "decoder_ref",
    "adder_comparator_mix_ref",
    "c17_ref",
    "crc_step_ref",
    "lfsr_step",
    "accumulator_step",
    "johnson_step",
    "mac_step",
]


def get_word(inputs: Assignment, prefix: str, width: int) -> int:
    """Pack bits ``prefix0..prefix{w-1}`` (LSB first) into an integer."""
    value = 0
    for i in range(width):
        value |= (inputs[f"{prefix}{i}"] & 1) << i
    return value


def put_word(out: Assignment, prefix: str, width: int, value: int) -> None:
    for i in range(width):
        out[f"{prefix}{i}"] = (value >> i) & 1


def ripple_adder_ref(width: int) -> Ref:
    """Also valid for the CLA and carry-select adders (same function)."""

    def ref(inputs: Assignment) -> Assignment:
        total = (
            get_word(inputs, "a", width)
            + get_word(inputs, "b", width)
            + inputs["cin"]
        )
        out: Assignment = {}
        put_word(out, "s", width, total)
        out["cout"] = (total >> width) & 1
        return out

    return ref


def multiplier_ref(width_a: int, width_b: Optional[int] = None) -> Ref:
    width_b = width_b if width_b is not None else width_a

    def ref(inputs: Assignment) -> Assignment:
        product = get_word(inputs, "a", width_a) * get_word(inputs, "b", width_b)
        out: Assignment = {}
        put_word(out, "p", width_a + width_b, product)
        return out

    return ref


def alu_ref(width: int) -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        a = get_word(inputs, "a", width)
        b = get_word(inputs, "b", width)
        s0, s1, cin = inputs["s0"], inputs["s1"], inputs["cin"]
        mask = (1 << width) - 1
        out: Assignment = {}
        if s1 == 0:
            operand = (b ^ (mask if s0 else 0)) & mask
            total = a + operand + cin
            f = total & mask
            out["cout"] = (total >> width) & 1
        else:
            f = (a & b) if s0 == 0 else (a | b)
            out["cout"] = 0
        put_word(out, "f", width, f)
        out["zero"] = int(f == 0)
        return out

    return ref


def parity_ref(width: int) -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        return {"parity": bin(get_word(inputs, "d", width)).count("1") & 1}

    return ref


def sec_ref(data_bits: int) -> Ref:
    r, positions = hamming_layout(data_bits)

    def ref(inputs: Assignment) -> Assignment:
        data = [inputs[f"d{i}"] for i in range(data_bits)]
        checks = [inputs[f"c{j}"] for j in range(r)]
        out: Assignment = {}
        syndrome = 0
        for j in range(r):
            bit = checks[j]
            for i, pos in enumerate(positions):
                if (pos >> j) & 1:
                    bit ^= data[i]
            out[f"y{j}"] = bit
            syndrome |= bit << j
        for i, pos in enumerate(positions):
            out[f"o{i}"] = data[i] ^ int(syndrome == pos)
        return out

    return ref


def priority_interrupt_ref(channels: int) -> Ref:
    bits = max(1, (channels - 1).bit_length())

    def ref(inputs: Assignment) -> Assignment:
        active = [
            inputs[f"r{i}"] & (1 - inputs[f"m{i}"]) for i in range(channels)
        ]
        winner = -1
        for i in range(channels - 1, -1, -1):
            if active[i]:
                winner = i
                break
        out: Assignment = {"any": int(winner >= 0)}
        for k in range(bits):
            out[f"v{k}"] = (winner >> k) & 1 if winner >= 0 else 0
        out["gp"] = int(winner >= 0)  # grants are one-hot
        return out

    return ref


def comparator_ref(width: int) -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        a = get_word(inputs, "a", width)
        b = get_word(inputs, "b", width)
        return {"eq": int(a == b), "lt": int(a < b), "gt": int(a > b)}

    return ref


def mux_tree_ref(select_bits: int) -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        sel = get_word(inputs, "s", select_bits)
        return {"y": inputs[f"d{sel}"]}

    return ref


def decoder_ref(width: int) -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        sel = get_word(inputs, "s", width)
        en = inputs["en"]
        return {
            f"q{code}": int(en and sel == code) for code in range(1 << width)
        }

    return ref


def adder_comparator_mix_ref(width: int) -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        a = get_word(inputs, "a", width)
        b = get_word(inputs, "b", width)
        t = get_word(inputs, "t", width)
        total = a + b + inputs["cin"]
        s = total & ((1 << width) - 1)
        out: Assignment = {}
        put_word(out, "s", width, s)
        out["cout"] = (total >> width) & 1
        out["eq"] = int(s == t)
        out["lt"] = int(s < t)
        out["pa"] = bin(a).count("1") & 1
        out["pb"] = bin(b).count("1") & 1
        return out

    return ref


def c17_ref() -> Ref:
    def ref(inputs: Assignment) -> Assignment:
        g1, g2, g3 = inputs["g1"], inputs["g2"], inputs["g3"]
        g6, g7 = inputs["g6"], inputs["g7"]
        g10 = 1 - (g1 & g3)
        g11 = 1 - (g3 & g6)
        g16 = 1 - (g2 & g11)
        g19 = 1 - (g11 & g7)
        return {"g22": 1 - (g10 & g16), "g23": 1 - (g16 & g19)}

    return ref


def crc_step_ref(width: int, data_bits: int, poly: Optional[int] = None) -> Ref:
    """Bitwise-serial model of :func:`repro.bench.circuits.crc_step`."""
    if poly is None:
        poly = 0x07 if width == 8 else (1 << max(0, width // 2)) | 1

    def ref(inputs: Assignment) -> Assignment:
        state = get_word(inputs, "s", width)
        mask = (1 << width) - 1
        for step in range(data_bits - 1, -1, -1):
            feedback = ((state >> (width - 1)) & 1) ^ inputs[f"d{step}"]
            state = (state << 1) & mask
            if feedback:
                state ^= poly
        out: Assignment = {}
        put_word(out, "ns", width, state)
        return out

    return ref


# ----------------------------------------------------------------------
# Sequential step models
# ----------------------------------------------------------------------


def lfsr_step(
    width: int, taps: Optional[Sequence[int]] = None
) -> Callable[[List[int], int], List[int]]:
    """Next-state function of :func:`repro.bench.circuits.lfsr`."""
    taps = list(taps) if taps is not None else [width - 1, 0]

    def step(state: List[int], sin: int) -> List[int]:
        fb = sin
        for t in taps:
            fb ^= state[t]
        return [fb] + state[:-1]

    return step


def accumulator_step(width: int) -> Callable[[List[int], int], List[int]]:
    """Next-state function of :func:`repro.bench.circuits.accumulator`."""

    def step(state: List[int], value: int) -> List[int]:
        acc = sum(bit << i for i, bit in enumerate(state))
        total = (acc + value) & ((1 << width) - 1)
        return [(total >> i) & 1 for i in range(width)]

    return step


def johnson_step(width: int) -> Callable[[List[int], int], List[int]]:
    """Next-state function of :func:`repro.bench.circuits.johnson_counter`."""

    def step(state: List[int], enable: int) -> List[int]:
        if not enable:
            return list(state)
        return [1 - state[-1]] + state[:-1]

    return step


def mac_step(width: int) -> Callable[[List[int], int, int], List[int]]:
    """Next-state function of :func:`repro.bench.circuits.multiply_accumulate`."""
    total = 2 * width

    def step(state: List[int], a: int, b: int) -> List[int]:
        acc = sum(bit << i for i, bit in enumerate(state))
        value = (acc + a * b) & ((1 << total) - 1)
        return [(value >> i) & 1 for i in range(total)]

    return step
