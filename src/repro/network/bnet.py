"""Technology-independent Boolean network (the SIS ``network`` equivalent).

A :class:`BooleanNetwork` is a DAG of logic nodes over named signals.
Signals are primary inputs, latch outputs, or the outputs of logic nodes.
Each logic node stores its local function as a :class:`TruthTable` over its
ordered fanin list.  Latches (single global clock, edge triggered — the
model of Section 4 of the paper) connect a combinational output back to a
pseudo-input.

The network is the input to technology decomposition
(:func:`repro.network.decompose.decompose_network`) and the reference model
for equivalence checking of mapped results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import NetworkError
from repro.network.expr import Expr, parse_expr
from repro.network.functions import TruthTable

__all__ = ["Node", "Latch", "BooleanNetwork"]

FuncLike = Union[TruthTable, Expr, str]

#: Latch initial-value codes (BLIF convention).
INIT_ZERO, INIT_ONE, INIT_DONT_CARE, INIT_UNKNOWN = 0, 1, 2, 3


class Node:
    """A logic node: an output signal computed from ordered fanin signals."""

    __slots__ = ("name", "fanins", "tt")

    def __init__(self, name: str, fanins: Sequence[str], tt: TruthTable):
        if tt.n_vars != len(fanins):
            raise NetworkError(
                f"node {name!r}: function arity {tt.n_vars} != fanin count {len(fanins)}"
            )
        if len(set(fanins)) != len(fanins):
            raise NetworkError(f"node {name!r}: duplicate fanin names")
        self.name = name
        self.fanins = tuple(fanins)
        self.tt = tt

    def __repr__(self) -> str:
        return f"Node({self.name!r}, fanins={list(self.fanins)})"


class Latch:
    """An edge-triggered latch: ``output`` presents last cycle's ``input``."""

    __slots__ = ("input", "output", "init")

    def __init__(self, input: str, output: str, init: int = INIT_ZERO):
        if init not in (INIT_ZERO, INIT_ONE, INIT_DONT_CARE, INIT_UNKNOWN):
            raise NetworkError(f"latch {output!r}: bad initial value {init}")
        self.input = input
        self.output = output
        self.init = init

    def __repr__(self) -> str:
        return f"Latch({self.input!r} -> {self.output!r}, init={self.init})"


class BooleanNetwork:
    """A named DAG of logic nodes with PIs, POs and optional latches."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.pis: List[str] = []
        self.pos: List[str] = []
        self.latches: List[Latch] = []
        self._nodes: Dict[str, Node] = {}
        self._pi_set: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> str:
        """Declare a primary input signal."""
        if self.has_signal(name):
            raise NetworkError(f"signal {name!r} already exists")
        self.pis.append(name)
        self._pi_set.add(name)
        return name

    def add_po(self, name: str) -> str:
        """Declare a primary output (must name an existing or future signal)."""
        self.pos.append(name)
        return name

    def add_latch(self, input: str, output: str, init: int = INIT_ZERO) -> Latch:
        """Add a latch from combinational signal ``input`` to pseudo-PI ``output``."""
        if self.has_signal(output):
            raise NetworkError(f"signal {output!r} already exists")
        latch = Latch(input, output, init)
        self.latches.append(latch)
        return latch

    def add_node(
        self,
        name: str,
        func: FuncLike,
        fanins: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a logic node computing ``func`` of ``fanins``.

        ``func`` may be a :class:`TruthTable` (positional over ``fanins``),
        an :class:`Expr`, or an expression string whose variables are signal
        names.  When ``func`` is an expression and ``fanins`` is omitted,
        the fanin list defaults to the expression's sorted support.
        """
        if self.has_signal(name):
            raise NetworkError(f"signal {name!r} already exists")
        if isinstance(func, str):
            func = parse_expr(func)
        if isinstance(func, Expr):
            if fanins is None:
                fanins = func.support()
            tt = func.to_tt(list(fanins))
        else:
            tt = func
            if fanins is None:
                raise NetworkError("fanins required when func is a TruthTable")
        self._nodes[name] = Node(name, fanins, tt)
        return name

    def replace_node(self, name: str, func: FuncLike, fanins: Sequence[str]) -> Node:
        """Replace an existing logic node's function and fanin list in place.

        The node keeps its output signal name, so readers and POs are
        unaffected; the caller is responsible for keeping the network
        acyclic (``check()`` validates).  Used by the ECO edit engine.
        """
        if name not in self._nodes:
            raise NetworkError(f"no logic node named {name!r}")
        if isinstance(func, str):
            func = parse_expr(func)
        tt = func.to_tt(list(fanins)) if isinstance(func, Expr) else func
        node = Node(name, fanins, tt)
        self._nodes[name] = node
        return node

    def remove_node(self, name: str) -> None:
        """Remove a logic node (caller must ensure it is unused)."""
        for user in self._nodes.values():
            if user.name != name and name in user.fanins:
                raise NetworkError(f"cannot remove {name!r}: used by {user.name!r}")
        if name in self.pos or any(l.input == name for l in self.latches):
            raise NetworkError(f"cannot remove {name!r}: it drives an output")
        del self._nodes[name]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_signal(self, name: str) -> bool:
        return (
            name in self._pi_set
            or name in self._nodes
            or any(l.output == name for l in self.latches)
        )

    def is_pi(self, name: str) -> bool:
        return name in self._pi_set

    def is_latch_output(self, name: str) -> bool:
        return any(l.output == name for l in self.latches)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"no logic node named {name!r}") from None

    def nodes(self) -> Iterable[Node]:
        return self._nodes.values()

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def combinational_inputs(self) -> List[str]:
        """PIs plus latch outputs: the source signals of the comb. core."""
        return list(self.pis) + [l.output for l in self.latches]

    def combinational_outputs(self) -> List[str]:
        """POs plus latch inputs: the sink signals of the comb. core."""
        return list(self.pos) + [l.input for l in self.latches]

    def is_combinational(self) -> bool:
        return not self.latches

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map each signal to the logic nodes that read it."""
        fanouts: Dict[str, List[str]] = {}
        for node in self._nodes.values():
            for fanin in node.fanins:
                fanouts.setdefault(fanin, []).append(node.name)
        return fanouts

    def topological_order(self) -> List[Node]:
        """Logic nodes sorted so fanins precede fanouts.

        Raises :class:`NetworkError` on a combinational cycle or a dangling
        fanin reference.
        """
        order: List[Node] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        sources = set(self.combinational_inputs())

        for root in self._nodes:
            if state.get(root) == 1:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                name, child_idx = stack.pop()
                if name in sources:
                    continue
                if name not in self._nodes:
                    raise NetworkError(f"dangling signal reference {name!r}")
                node = self._nodes[name]
                if child_idx == 0:
                    if state.get(name) == 1:
                        continue
                    if state.get(name) == 0:
                        raise NetworkError(f"combinational cycle through {name!r}")
                    state[name] = 0
                if child_idx < len(node.fanins):
                    stack.append((name, child_idx + 1))
                    fanin = node.fanins[child_idx]
                    if state.get(fanin) != 1 and fanin not in sources:
                        stack.append((fanin, 0))
                else:
                    state[name] = 1
                    order.append(node)
        return order

    def check(self) -> None:
        """Validate structural integrity; raises on any problem."""
        for node in self._nodes.values():
            for fanin in node.fanins:
                if not self.has_signal(fanin):
                    raise NetworkError(
                        f"node {node.name!r} reads undefined signal {fanin!r}"
                    )
        for po in self.pos:
            if not self.has_signal(po):
                raise NetworkError(f"primary output {po!r} is undefined")
        for latch in self.latches:
            if not self.has_signal(latch.input):
                raise NetworkError(f"latch input {latch.input!r} is undefined")
        self.topological_order()

    def depth(self) -> int:
        """Unit-delay depth of the combinational core (levels of logic)."""
        level: Dict[str, int] = {s: 0 for s in self.combinational_inputs()}
        for node in self.topological_order():
            level[node.name] = 1 + max(
                (level[f] for f in node.fanins), default=0
            )
        return max(
            (level.get(s, 0) for s in self.combinational_outputs()), default=0
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, inputs: Dict[str, int], mask: int) -> Dict[str, int]:
        """Bit-parallel combinational simulation.

        ``inputs`` maps each combinational input (PI and latch output) to a
        packed word; ``mask`` selects the active bit lanes.  Returns a map
        from every signal to its packed value.
        """
        values: Dict[str, int] = {}
        for name in self.combinational_inputs():
            if name not in inputs:
                raise NetworkError(f"missing input word for {name!r}")
            values[name] = inputs[name] & mask
        for node in self.topological_order():
            words = [values[f] for f in node.fanins]
            values[node.name] = node.tt.eval_words(words, mask)
        return values

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "BooleanNetwork":
        """Deep copy (truth tables are immutable and shared)."""
        out = BooleanNetwork(name or self.name)
        out.pis = list(self.pis)
        out._pi_set = set(self._pi_set)
        out.pos = list(self.pos)
        out.latches = [Latch(l.input, l.output, l.init) for l in self.latches]
        out._nodes = {
            k: Node(v.name, v.fanins, v.tt) for k, v in self._nodes.items()
        }
        return out

    def stats(self) -> Dict[str, int]:
        """Summary counts used by reports and tests."""
        return {
            "pis": len(self.pis),
            "pos": len(self.pos),
            "latches": len(self.latches),
            "nodes": len(self._nodes),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        return (
            f"BooleanNetwork({self.name!r}, pis={len(self.pis)}, "
            f"pos={len(self.pos)}, nodes={len(self._nodes)}, "
            f"latches={len(self.latches)})"
        )
