"""Truth-table representation of small Boolean functions.

A :class:`TruthTable` stores a function of ``n_vars`` inputs as a Python
integer bit vector with ``2**n_vars`` bits: bit ``i`` holds the function
value on the input assignment whose variable ``j`` equals bit ``j`` of
``i``.  Python's arbitrary-precision integers make this representation
exact and fast for the node-local functions technology mapping deals with
(gate functions of up to 16 inputs, LUT functions of up to ~8 inputs).

The module also provides irredundant sum-of-products extraction
(Minato-Morreale ISOP), which the technology decomposer uses to turn node
functions into two-level forms before NAND2-INV decomposition.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterator, List, Sequence, Tuple

#: A cube is a tuple of (variable index, phase) literals; phase True means
#: the positive literal.  The empty cube is the constant-1 cube.
Cube = Tuple[Tuple[int, bool], ...]

_MAX_VARS = 20


def _full_mask(n_vars: int) -> int:
    return (1 << (1 << n_vars)) - 1


# ----------------------------------------------------------------------
# Packed-word primitives (the bit-parallel kernel's integer layer)
#
# A *word* is a Python int holding one function value per bit lane; over
# 2**n_vars lanes in minterm order a word IS a truth table.  These
# helpers are pure integer->integer operations so the bit-parallel
# simulation kernel (repro.network.bitsim), the NPN canonicalizer and
# the TruthTable methods below can share them.
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def variable_bits(index: int, n_vars: int) -> int:
    """Packed word of the projection function ``x_index`` over ``2**n_vars`` lanes.

    Built by doubling (O(n_vars) big-int ops) instead of one Python-loop
    iteration per period, and cached: the tiling words are shared by every
    exhaustive simulation, pattern evaluation and pin-class computation.
    """
    if not 0 <= index < n_vars:
        raise ValueError(f"variable index {index} out of range for {n_vars} vars")
    period = 1 << index
    word = ((1 << period) - 1) << period
    width = period * 2
    total = 1 << n_vars
    while width < total:
        word |= word << width
        width *= 2
    return word


def swap_vars_bits(bits: int, i: int, j: int, n_vars: int) -> int:
    """Exchange variables ``i`` and ``j``: result[a] = bits[a with bits i,j swapped].

    The classic delta-swap: lanes where the two variable bits differ are
    exchanged with their partner ``(1 << j) - (1 << i)`` positions away,
    in O(1) big-int operations.
    """
    if not (0 <= i < n_vars and 0 <= j < n_vars):
        raise ValueError("swap index out of range")
    if i == j:
        return bits
    if i > j:
        i, j = j, i
    delta = (1 << j) - (1 << i)
    pairs = variable_bits(i, n_vars) & ~variable_bits(j, n_vars)
    t = ((bits >> delta) ^ bits) & pairs
    return bits ^ t ^ (t << delta)


def permute_bits(bits: int, perm: Sequence[int], n_vars: int) -> int:
    """Apply an input permutation: result[a] = bits[b] where b_i = a_{perm[i]}.

    This is the transform the NPN enumeration uses (variable ``i`` of the
    result reads variable ``perm[i]`` of the assignment).  Decomposed into
    delta swaps: each step right-multiplies the residual permutation by a
    transposition, fixing one more position, so at most ``n_vars - 1``
    swaps run.
    """
    residual = list(perm)
    if sorted(residual) != list(range(n_vars)):
        raise ValueError("perm must be a permutation of the input indices")
    for i in range(n_vars):
        while residual[i] != i:
            j = residual[i]
            bits = swap_vars_bits(bits, i, j, n_vars)
            residual[i], residual[j] = residual[j], residual[i]
    return bits


def negate_inputs_bits(bits: int, negations: int, n_vars: int) -> int:
    """Complement a subset of inputs: result[a] = bits[a ^ negations].

    Bit ``i`` of ``negations`` flips variable ``i`` by exchanging the two
    Shannon halves along that variable — one shift pair per set bit.
    """
    full = _full_mask(n_vars)
    for i in range(n_vars):
        if (negations >> i) & 1:
            period = 1 << i
            vmask = variable_bits(i, n_vars)
            bits = ((bits & vmask) >> period) | ((bits & ~vmask & full) << period)
    return bits


def invert_permutation(perm: Sequence[int]) -> List[int]:
    """The inverse permutation: ``out[perm[i]] = i``."""
    out = [0] * len(perm)
    for i, p in enumerate(perm):
        out[p] = i
    return out


class TruthTable:
    """An immutable Boolean function of ``n_vars`` ordered inputs.

    Bit ``i`` of :attr:`bits` is the value of the function on the
    assignment where input ``j`` takes bit ``j`` of ``i``.
    """

    __slots__ = ("n_vars", "bits")

    def __init__(self, n_vars: int, bits: int):
        if not 0 <= n_vars <= _MAX_VARS:
            raise ValueError(f"n_vars must be in [0, {_MAX_VARS}], got {n_vars}")
        mask = _full_mask(n_vars)
        if not 0 <= bits <= mask:
            raise ValueError("bits out of range for the declared variable count")
        self.n_vars = n_vars
        self.bits = bits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def const0(cls, n_vars: int = 0) -> "TruthTable":
        """The constant-0 function of ``n_vars`` inputs."""
        return cls(n_vars, 0)

    @classmethod
    def const1(cls, n_vars: int = 0) -> "TruthTable":
        """The constant-1 function of ``n_vars`` inputs."""
        return cls(n_vars, _full_mask(n_vars))

    @classmethod
    def variable(cls, index: int, n_vars: int) -> "TruthTable":
        """The projection function returning input ``index``."""
        return cls(n_vars, variable_bits(index, n_vars))

    @classmethod
    def from_function(cls, fn: Callable[..., int], n_vars: int) -> "TruthTable":
        """Tabulate ``fn`` (taking ``n_vars`` 0/1 arguments) into a table."""
        bits = 0
        for i in range(1 << n_vars):
            args = [(i >> j) & 1 for j in range(n_vars)]
            if fn(*args):
                bits |= 1 << i
        return cls(n_vars, bits)

    @classmethod
    def from_minterms(cls, minterms: Sequence[int], n_vars: int) -> "TruthTable":
        """Build a table from the list of on-set minterm indices."""
        bits = 0
        for m in minterms:
            if not 0 <= m < (1 << n_vars):
                raise ValueError(f"minterm {m} out of range")
            bits |= 1 << m
        return cls(n_vars, bits)

    # ------------------------------------------------------------------
    # Logical operators (operands must agree on n_vars)
    # ------------------------------------------------------------------
    def _check_arity(self, other: "TruthTable") -> None:
        if self.n_vars != other.n_vars:
            raise ValueError("truth tables have different variable counts")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_arity(other)
        return TruthTable(self.n_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_arity(other)
        return TruthTable(self.n_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_arity(other)
        return TruthTable(self.n_vars, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n_vars, self.bits ^ _full_mask(self.n_vars))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.n_vars == other.n_vars and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.n_vars, self.bits))

    def __repr__(self) -> str:
        width = (1 << self.n_vars) // 4 or 1
        return f"TruthTable({self.n_vars}, 0x{self.bits:0{width}x})"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def evaluate(self, assignment: int) -> int:
        """Value of the function on an assignment encoded as an integer."""
        if not 0 <= assignment < (1 << self.n_vars):
            raise ValueError("assignment out of range")
        return (self.bits >> assignment) & 1

    def eval_words(self, words: Sequence[int], mask: int) -> int:
        """Bit-parallel evaluation over packed input words.

        ``words[j]`` carries one bit per simulation vector for input ``j``;
        ``mask`` selects the active bit positions.  Returns the packed
        output word.  Uses Shannon expansion on the highest variable.
        """
        if len(words) != self.n_vars:
            raise ValueError("wrong number of input words")
        return _eval_words_rec(self.bits, self.n_vars, words, mask)

    def is_const0(self) -> bool:
        return self.bits == 0

    def is_const1(self) -> bool:
        return self.bits == _full_mask(self.n_vars)

    def is_constant(self) -> bool:
        return self.is_const0() or self.is_const1()

    def depends_on(self, index: int) -> bool:
        """True if the function actually depends on input ``index``."""
        return self.cofactor(index, 0) != self.cofactor(index, 1)

    def support(self) -> List[int]:
        """Indices of inputs the function actually depends on."""
        return [i for i in range(self.n_vars) if self.depends_on(i)]

    def count_ones(self) -> int:
        """Number of on-set minterms."""
        return bin(self.bits).count("1")

    def minterms(self) -> Iterator[int]:
        """Iterate over on-set minterm indices in increasing order."""
        bits = self.bits
        i = 0
        while bits:
            if bits & 1:
                yield i
            bits >>= 1
            i += 1

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def cofactor(self, index: int, value: int) -> "TruthTable":
        """Shannon cofactor with input ``index`` fixed to ``value``.

        The result keeps the same variable count (the fixed variable
        becomes vacuous), which keeps index bookkeeping simple.
        """
        if not 0 <= index < self.n_vars:
            raise ValueError("cofactor index out of range")
        period = 1 << index
        vmask = variable_bits(index, self.n_vars)
        if value:
            keep = self.bits & vmask
            out = keep | (keep >> period)
        else:
            keep = self.bits & ~vmask & _full_mask(self.n_vars)
            out = keep | (keep << period)
        return TruthTable(self.n_vars, out)

    def permuted(self, perm: Sequence[int]) -> "TruthTable":
        """Reorder inputs: new input ``i`` is old input ``perm[i]``."""
        if sorted(perm) != list(range(self.n_vars)):
            raise ValueError("perm must be a permutation of the input indices")
        # permuted(): new input i is old input perm[i], i.e. result[a] =
        # bits[b] with b_{perm[j]} = a_j — permute_bits with the inverse.
        return TruthTable(
            self.n_vars,
            permute_bits(self.bits, invert_permutation(perm), self.n_vars),
        )

    def extended(self, n_vars: int) -> "TruthTable":
        """Pad with vacuous high-order inputs up to ``n_vars`` total."""
        if n_vars < self.n_vars:
            raise ValueError("cannot shrink a truth table; use shrunk()")
        bits = self.bits
        size = 1 << self.n_vars
        for _ in range(n_vars - self.n_vars):
            bits |= bits << size
            size *= 2
        return TruthTable(n_vars, bits)

    def shrunk(self) -> Tuple["TruthTable", List[int]]:
        """Drop vacuous inputs.

        Returns the compacted table and the list mapping new input index to
        old input index.
        """
        keep = self.support()
        table = TruthTable.from_function(
            lambda *args: self.evaluate(
                sum((args[k] << keep[k]) for k in range(len(keep)))
            ),
            len(keep),
        )
        return table, keep

    # ------------------------------------------------------------------
    # Two-level forms
    # ------------------------------------------------------------------
    def isop(self) -> List[Cube]:
        """Irredundant sum-of-products cover (Minato-Morreale ISOP).

        Returns a list of cubes covering exactly the on-set.  The constant-1
        function yields ``[()]`` (one empty cube); constant 0 yields ``[]``.
        """
        cover, _ = _isop(self.bits, self.bits, self.n_vars, self.n_vars)
        return cover

    def to_sop_string(self, names: Sequence[str] | None = None) -> str:
        """Human-readable SOP using ``names`` (defaults to x0, x1, ...)."""
        if names is None:
            names = [f"x{i}" for i in range(self.n_vars)]
        cubes = self.isop()
        if not cubes:
            return "0"
        terms = []
        for cube in cubes:
            if not cube:
                return "1"
            lits = [names[v] if phase else f"!{names[v]}" for v, phase in cube]
            terms.append("*".join(lits))
        return " + ".join(terms)


def _eval_words_rec(bits: int, n_vars: int, words: Sequence[int], mask: int) -> int:
    """Shannon-expand ``bits`` (a 2**n_vars table) over packed input words."""
    size = 1 << n_vars
    full = (1 << size) - 1
    if bits == 0:
        return 0
    if bits == full:
        return mask
    half = size >> 1
    low = bits & ((1 << half) - 1)
    high = bits >> half
    word = words[n_vars - 1]
    return (
        (~word & _eval_words_rec(low, n_vars - 1, words, mask))
        | (word & _eval_words_rec(high, n_vars - 1, words, mask))
    ) & mask


def _isop(lower: int, upper: int, n_vars: int, total_vars: int) -> Tuple[List[Cube], int]:
    """Minato-Morreale recursion on the interval [lower, upper].

    ``lower`` is the set that must be covered, ``upper`` the set that may be
    covered; both are bit vectors over ``2**total_vars`` positions but only
    the low ``2**n_vars`` bits of the *sub*problem are meaningful at each
    recursion level.  Returns (cover, bits actually covered).
    """
    if lower == 0:
        return [], 0
    size = 1 << n_vars
    full = (1 << size) - 1
    if upper & full == full:
        return [()], full
    if n_vars == 0:
        # lower != 0 and upper != full is impossible since lower <= upper.
        return [()], 1
    half = size // 2
    half_mask = (1 << half) - 1
    var = n_vars - 1

    l0, l1 = lower & half_mask, (lower >> half) & half_mask
    u0, u1 = upper & half_mask, (upper >> half) & half_mask

    # Cubes that must contain the negative literal of `var`.
    cover0, covered0 = _isop(l0 & ~u1 & half_mask, u0, var, total_vars)
    # Cubes that must contain the positive literal.
    cover1, covered1 = _isop(l1 & ~u0 & half_mask, u1, var, total_vars)
    # What remains must be covered by cubes independent of `var`.
    rest_l = (l0 & ~covered0 & half_mask) | (l1 & ~covered1 & half_mask)
    cover2, covered2 = _isop(rest_l, u0 & u1, var, total_vars)

    cover = (
        [cube + ((var, False),) for cube in cover0]
        + [cube + ((var, True),) for cube in cover1]
        + cover2
    )
    covered = (covered0 | covered2) | ((covered1 | covered2) << half)
    return cover, covered


def cube_to_tt(cube: Cube, n_vars: int) -> TruthTable:
    """Truth table of a single cube over ``n_vars`` inputs."""
    table = TruthTable.const1(n_vars)
    for var, phase in cube:
        lit = TruthTable.variable(var, n_vars)
        table = table & lit if phase else table & ~lit
    return table


def sop_to_tt(cubes: Sequence[Cube], n_vars: int) -> TruthTable:
    """Truth table of a sum of cubes."""
    table = TruthTable.const0(n_vars)
    for cube in cubes:
        table = table | cube_to_tt(cube, n_vars)
    return table
