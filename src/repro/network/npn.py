"""NPN canonicalisation of small Boolean functions.

Two functions are NPN-equivalent when one becomes the other under some
input Negation, input Permutation and output Negation.  Gate libraries
are naturally organised by NPN class (all bracketings/phases of the same
class share mapping behaviour), and the canonical form gives a cheap
library fingerprint: :func:`npn_classes` reports how many genuinely
different functions a library offers — e.g. the 44-3 replica's hundreds
of gates collapse to far fewer classes, quantifying its redundancy.

The enumeration is exhaustive (``2^n * n! * 2`` transforms), intended for
the n <= 6 functions that appear as library gates.  Because the cut
matching engine (:mod:`repro.core.cuts` / :mod:`repro.library.npn_table`)
canonicalises one function per subject cut, :func:`npn_canonical` is
memoized behind a process-wide cache keyed on ``(n, bits)``:

* for n <= 4 a miss *orbit-fills* the memo — every transform image of the
  queried function shares its class, so one exhaustive search stores the
  entire NPN orbit (at most ``2 * 2^n * n!`` entries).  The number of
  exhaustive searches is then bounded by the number of distinct classes
  ever encountered (222 for n = 4), not the number of distinct functions;
* for n >= 5 orbits are too large to enumerate eagerly, so entries go
  into a bounded LRU.

Cache telemetry accumulates in :data:`NPN_STATS` (a
:class:`repro.perf.counters.NPNStats`).  Memoized answers return the
same canonical table as a fresh search; the accompanying transform is
*a* transform achieving it (for orbit-filled entries, the composition of
the orbit walk with the representative's transform), not necessarily the
search's first-found one — every consumer, including the library NPN
table, only relies on validity, which the transform algebra below makes
checkable: ``apply_transform(t, f) == canonical``.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import permutations
from typing import Dict, Iterable, List, NamedTuple, Tuple

from repro.network.functions import (
    TruthTable,
    invert_permutation,
    negate_inputs_bits,
    permute_bits,
)
from repro.perf.counters import NPNStats

__all__ = [
    "NPNTransform",
    "NPN_STATS",
    "apply_transform",
    "clear_npn_cache",
    "compose_transforms",
    "invert_transform",
    "npn_canonical",
    "npn_classes",
    "npn_equivalent",
]

_MAX_VARS = 6

#: Orbit filling is worthwhile while an orbit (<= 2 * 2^n * n!) is small
#: against the function space (2^2^n): up to n = 4.
_ORBIT_FILL_MAX_VARS = 4

#: Bound on memo entries for n >= 5 functions (LRU beyond this).
_LRU_MAX = 4096

#: Process-wide canonicalisation counters (see module docstring).
NPN_STATS = NPNStats()


class NPNTransform(NamedTuple):
    """The transform mapping a function onto its canonical form.

    canonical(x_0..x_{n-1}) =
        output_negate XOR f(y_0..y_{n-1}) where
        y_i = x_{perm[i]} XOR input_negations bit i
    (the convention pinned by the per-minterm oracle :func:`_apply_scalar`).
    """

    perm: Tuple[int, ...]
    input_negations: int
    output_negate: bool


def _apply(tt: TruthTable, perm: Tuple[int, ...], neg: int, out_neg: bool) -> int:
    """Bits of the transformed function (see :class:`NPNTransform`).

    Packed formulation: transformed[a] = tt[m(a) ^ neg] with
    ``m(a)_i = a_{perm[i]}``, i.e. input negation then word permutation,
    byte-identical to per-minterm evaluation (pinned by the scalar
    reference :func:`_apply_scalar` in the differential tests).
    """
    n = tt.n_vars
    bits = permute_bits(negate_inputs_bits(tt.bits, neg, n), perm, n)
    if out_neg:
        bits ^= (1 << (1 << n)) - 1
    return bits


def _apply_scalar(
    tt: TruthTable, perm: Tuple[int, ...], neg: int, out_neg: bool
) -> int:
    """Per-minterm reference implementation of :func:`_apply` (the oracle)."""
    n = tt.n_vars
    bits = 0
    for assignment in range(1 << n):
        original = 0
        for i in range(n):
            bit = (assignment >> perm[i]) & 1
            bit ^= (neg >> i) & 1
            original |= bit << i
        value = tt.evaluate(original) ^ int(out_neg)
        bits |= value << assignment
    return bits


# ----------------------------------------------------------------------
# Transform algebra
# ----------------------------------------------------------------------


def apply_transform(transform: NPNTransform, tt: TruthTable) -> TruthTable:
    """The image of ``tt`` under ``transform`` (see :class:`NPNTransform`)."""
    return TruthTable(
        tt.n_vars,
        _apply(
            tt, transform.perm, transform.input_negations,
            transform.output_negate,
        ),
    )


def invert_transform(transform: NPNTransform) -> NPNTransform:
    """The inverse transform: ``apply(invert(t), apply(t, f)) == f``.

    With ``g(x) = out ^ f(y)``, ``y_i = x_{perm[i]} ^ neg_i``, solving for
    ``f`` gives ``f(y) = out ^ g(x)`` with ``x_j = y_{perm'[j]} ^ neg'_j``
    where ``perm'`` is the inverse permutation and ``neg'_j = neg_{perm'[j]}``
    (the original negation of the position that lands on ``j``).
    """
    inv_perm = tuple(invert_permutation(transform.perm))
    neg = 0
    for j, source in enumerate(inv_perm):
        neg |= ((transform.input_negations >> source) & 1) << j
    return NPNTransform(inv_perm, neg, transform.output_negate)


def compose_transforms(after: NPNTransform, before: NPNTransform) -> NPNTransform:
    """The transform applying ``before`` first, then ``after``.

    ``apply(compose(a, b), f) == apply(a, apply(b, f))`` for every ``f``
    (pinned by the property tests).
    """
    a_perm, a_neg, a_out = after
    b_perm, b_neg, b_out = before
    perm = tuple(a_perm[b_perm[j]] for j in range(len(a_perm)))
    neg = 0
    for j in range(len(a_perm)):
        bit = ((a_neg >> b_perm[j]) & 1) ^ ((b_neg >> j) & 1)
        neg |= bit << j
    return NPNTransform(perm, neg, a_out ^ b_out)


# ----------------------------------------------------------------------
# Canonicalisation (memoized)
# ----------------------------------------------------------------------

#: (n, bits) -> (canonical bits, transform achieving it).  Orbit-filled
#: entries (n <= 4) are permanent — their total count is bounded by the
#: function space; n >= 5 entries live in LRU order (moved on hit).
_memo: "OrderedDict[Tuple[int, int], Tuple[int, NPNTransform]]" = OrderedDict()
_lru_entries = 0


def clear_npn_cache() -> None:
    """Drop every memoized canonicalisation (tests and benchmarks)."""
    global _lru_entries
    _memo.clear()
    _lru_entries = 0


def _canonical_search(tt: TruthTable) -> Tuple[int, NPNTransform]:
    """The exhaustive ``2^n * n! * 2`` search (the unmemoized reference)."""
    best_bits = None
    best: NPNTransform | None = None
    n = tt.n_vars
    for perm in permutations(range(n)):
        for neg in range(1 << n):
            for out_neg in (False, True):
                bits = _apply(tt, perm, neg, out_neg)
                if best_bits is None or bits < best_bits:
                    best_bits = bits
                    best = NPNTransform(perm, neg, out_neg)
    assert best is not None and best_bits is not None
    return best_bits, best


def npn_canonical(tt: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """The lexicographically-smallest NPN representative of ``tt``.

    Returns the canonical table and one transform achieving it.  Memoized
    process-wide (see the module docstring); counters in :data:`NPN_STATS`.
    """
    global _lru_entries
    n = tt.n_vars
    if n > _MAX_VARS:
        raise ValueError(f"NPN canonicalisation limited to {_MAX_VARS} inputs")
    key = (n, tt.bits)
    cached = _memo.get(key)
    if cached is not None:
        NPN_STATS.hits += 1
        canonical_bits, transform = cached
        if n > _ORBIT_FILL_MAX_VARS:
            _memo.move_to_end(key)
        return TruthTable(n, canonical_bits), transform
    NPN_STATS.misses += 1
    canonical_bits, transform = _canonical_search(tt)
    if n <= _ORBIT_FILL_MAX_VARS:
        # Orbit filling: every image g = T(f) of f shares the class, and
        # canonical = B(f) = B(T^-1(g)) makes compose(B, invert(T)) a
        # valid transform for g.  One search stores the whole orbit.
        full = (1 << (1 << n)) - 1
        bits = tt.bits
        before = len(_memo)
        for perm in permutations(range(n)):
            inv_perm = tuple(invert_permutation(perm))
            for neg in range(1 << n):
                image = permute_bits(negate_inputs_bits(bits, neg, n), perm, n)
                walk = NPNTransform(perm, neg, False)
                back = compose_transforms(transform, invert_transform(walk))
                _memo.setdefault((n, image), (canonical_bits, back))
                _memo.setdefault(
                    (n, image ^ full),
                    (canonical_bits, NPNTransform(back.perm, back.input_negations,
                                                  not back.output_negate)),
                )
        NPN_STATS.orbit_entries += len(_memo) - before
    else:
        _memo[key] = (canonical_bits, transform)
        _lru_entries += 1
        if _lru_entries > _LRU_MAX:
            # Evict the least recently used n >= 5 entry: orbit-filled
            # keys are appended in bulk on misses and never moved, so
            # scan from the cold end for a large-n key.
            for old_key in _memo:
                if old_key[0] > _ORBIT_FILL_MAX_VARS:
                    del _memo[old_key]
                    _lru_entries -= 1
                    NPN_STATS.evictions += 1
                    break
    return TruthTable(n, canonical_bits), transform


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when the functions are NPN-equivalent (same input count)."""
    if a.n_vars != b.n_vars:
        return False
    return npn_canonical(a)[0] == npn_canonical(b)[0]


def npn_classes(tables: Iterable[TruthTable]) -> Dict[TruthTable, List[int]]:
    """Group functions by NPN class.

    Returns canonical table -> indices of the inputs belonging to it.
    """
    classes: Dict[TruthTable, List[int]] = {}
    for index, tt in enumerate(tables):
        canonical, _ = npn_canonical(tt)
        classes.setdefault(canonical, []).append(index)
    return classes
