"""NPN canonicalisation of small Boolean functions.

Two functions are NPN-equivalent when one becomes the other under some
input Negation, input Permutation and output Negation.  Gate libraries
are naturally organised by NPN class (all bracketings/phases of the same
class share mapping behaviour), and the canonical form gives a cheap
library fingerprint: :func:`npn_classes` reports how many genuinely
different functions a library offers — e.g. the 44-3 replica's hundreds
of gates collapse to far fewer classes, quantifying its redundancy.

The enumeration is exhaustive (``2^n * n! * 2`` transforms), intended for
the n <= 6 functions that appear as library gates.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, List, NamedTuple, Tuple

from repro.network.functions import (
    TruthTable,
    negate_inputs_bits,
    permute_bits,
)

__all__ = ["NPNTransform", "npn_canonical", "npn_equivalent", "npn_classes"]

_MAX_VARS = 6


class NPNTransform(NamedTuple):
    """The transform mapping a function onto its canonical form.

    canonical(x_0..x_{n-1}) =
        output_negate XOR f(y_0..y_{n-1}) where
        y_{perm[i]} = x_i XOR input_negations bit i.
    """

    perm: Tuple[int, ...]
    input_negations: int
    output_negate: bool


def _apply(tt: TruthTable, perm: Tuple[int, ...], neg: int, out_neg: bool) -> int:
    """Bits of the transformed function (see :class:`NPNTransform`).

    Packed formulation: transformed[a] = tt[m(a) ^ neg] with
    ``m(a)_i = a_{perm[i]}``, i.e. input negation then word permutation,
    byte-identical to per-minterm evaluation (pinned by the scalar
    reference :func:`_apply_scalar` in the differential tests).
    """
    n = tt.n_vars
    bits = permute_bits(negate_inputs_bits(tt.bits, neg, n), perm, n)
    if out_neg:
        bits ^= (1 << (1 << n)) - 1
    return bits


def _apply_scalar(
    tt: TruthTable, perm: Tuple[int, ...], neg: int, out_neg: bool
) -> int:
    """Per-minterm reference implementation of :func:`_apply` (the oracle)."""
    n = tt.n_vars
    bits = 0
    for assignment in range(1 << n):
        original = 0
        for i in range(n):
            bit = (assignment >> perm[i]) & 1
            bit ^= (neg >> i) & 1
            original |= bit << i
        value = tt.evaluate(original) ^ int(out_neg)
        bits |= value << assignment
    return bits


def npn_canonical(tt: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """The lexicographically-smallest NPN representative of ``tt``.

    Returns the canonical table and one transform achieving it.
    """
    n = tt.n_vars
    if n > _MAX_VARS:
        raise ValueError(f"NPN canonicalisation limited to {_MAX_VARS} inputs")
    best_bits = None
    best: NPNTransform | None = None
    for perm in permutations(range(n)):
        for neg in range(1 << n):
            for out_neg in (False, True):
                bits = _apply(tt, perm, neg, out_neg)
                if best_bits is None or bits < best_bits:
                    best_bits = bits
                    best = NPNTransform(perm, neg, out_neg)
    assert best is not None and best_bits is not None
    return TruthTable(n, best_bits), best


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when the functions are NPN-equivalent (same input count)."""
    if a.n_vars != b.n_vars:
        return False
    return npn_canonical(a)[0] == npn_canonical(b)[0]


def npn_classes(tables: Iterable[TruthTable]) -> Dict[TruthTable, List[int]]:
    """Group functions by NPN class.

    Returns canonical table -> indices of the inputs belonging to it.
    """
    classes: Dict[TruthTable, List[int]] = {}
    for index, tt in enumerate(tables):
        canonical, _ = npn_canonical(tt)
        classes.setdefault(canonical, []).append(index)
    return classes
