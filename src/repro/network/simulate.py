"""Bit-parallel simulation and equivalence checking.

All circuit representations in this package (Boolean networks, subject
graphs, mapped netlists, LUT networks) can be simulated with packed integer
words, one bit lane per vector.  This module provides a uniform interface
plus random and exhaustive combinational equivalence checks, which the test
suite and the experiment harness use to certify every mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.bnet import BooleanNetwork
from repro.network.subject import SubjectGraph

__all__ = [
    "Counterexample",
    "simulate_outputs",
    "random_equivalence",
    "exhaustive_equivalence",
    "check_equivalent",
    "input_names",
    "output_names",
]

_EXHAUSTIVE_LIMIT = 16


@dataclass
class Counterexample:
    """A distinguishing input assignment found by an equivalence check."""

    assignment: Dict[str, int]
    output: str
    value_a: int
    value_b: int

    def __str__(self) -> str:
        bits = ", ".join(f"{k}={v}" for k, v in sorted(self.assignment.items()))
        return (
            f"output {self.output!r} differs ({self.value_a} vs {self.value_b}) "
            f"on [{bits}]"
        )


def _adapt(obj: Any) -> Tuple[List[str], List[str], Callable[[Dict[str, int], int], Dict[str, int]]]:
    """Return (input names, output names, simulate fn) for any circuit object."""
    if isinstance(obj, BooleanNetwork):
        ins = obj.combinational_inputs()
        outs = obj.combinational_outputs()

        def run(inputs: Dict[str, int], mask: int) -> Dict[str, int]:
            values = obj.simulate(inputs, mask)
            return {name: values[name] for name in outs}

        return ins, outs, run
    if isinstance(obj, SubjectGraph):
        ins = [pi.name for pi in obj.pis]
        outs = [name for name, _ in obj.pos]
        return ins, outs, obj.simulate
    # Protocol fallback: mapped netlists / LUT networks implement these.
    ins = list(obj.sim_inputs())
    outs = list(obj.sim_outputs())
    return ins, outs, obj.simulate


def input_names(obj: Any) -> List[str]:
    """Combinational input names of any supported circuit object."""
    return _adapt(obj)[0]


def output_names(obj: Any) -> List[str]:
    """Combinational output names of any supported circuit object."""
    return _adapt(obj)[1]


def simulate_outputs(obj: Any, inputs: Dict[str, int], mask: int) -> Dict[str, int]:
    """Simulate any supported circuit object; returns output name -> word."""
    return _adapt(obj)[2](inputs, mask)


def _compare(
    ins: Sequence[str],
    outs_common: Sequence[str],
    run_a,
    run_b,
    words: Dict[str, int],
    mask: int,
) -> Optional[Counterexample]:
    res_a = run_a(words, mask)
    res_b = run_b(words, mask)
    for name in outs_common:
        diff = (res_a[name] ^ res_b[name]) & mask
        if diff:
            lane = (diff & -diff).bit_length() - 1
            assignment = {k: (words[k] >> lane) & 1 for k in ins}
            return Counterexample(
                assignment,
                name,
                (res_a[name] >> lane) & 1,
                (res_b[name] >> lane) & 1,
            )
    return None


def _align(a: Any, b: Any) -> Tuple[List[str], List[str], Callable, Callable]:
    ins_a, outs_a, run_a = _adapt(a)
    ins_b, outs_b, run_b = _adapt(b)
    if set(ins_a) != set(ins_b):
        raise NetworkError(
            "input mismatch: "
            f"only-a={sorted(set(ins_a) - set(ins_b))}, "
            f"only-b={sorted(set(ins_b) - set(ins_a))}"
        )
    common = [name for name in outs_a if name in set(outs_b)]
    if not common:
        raise NetworkError("no common outputs to compare")
    return ins_a, common, run_a, run_b


def random_equivalence(
    a: Any,
    b: Any,
    vectors: int = 2048,
    seed: int = 2024,
    width: int = 1024,
) -> Optional[Counterexample]:
    """Random-vector equivalence check; None means no difference found."""
    ins, outs, run_a, run_b = _align(a, b)
    rng = random.Random(seed)
    mask = (1 << width) - 1
    rounds = max(1, (vectors + width - 1) // width)
    for _ in range(rounds):
        words = {name: rng.getrandbits(width) for name in ins}
        cex = _compare(ins, outs, run_a, run_b, words, mask)
        if cex is not None:
            return cex
    # Also probe the all-0 / all-1 corners, cheap and often revealing.
    for fill in (0, mask):
        words = {name: fill for name in ins}
        cex = _compare(ins, outs, run_a, run_b, words, mask)
        if cex is not None:
            return cex
    return None


def exhaustive_equivalence(a: Any, b: Any) -> Optional[Counterexample]:
    """Exhaustive equivalence for circuits with at most 16 inputs.

    Simulates all ``2**n`` assignments in a single pass using one wide word
    per input (the truth-table tiling pattern).
    """
    ins, outs, run_a, run_b = _align(a, b)
    n = len(ins)
    if n > _EXHAUSTIVE_LIMIT:
        raise NetworkError(
            f"{n} inputs is too many for exhaustive check (limit {_EXHAUSTIVE_LIMIT})"
        )
    mask = (1 << (1 << n)) - 1
    words: Dict[str, int] = {}
    for i, name in enumerate(ins):
        period = 1 << i
        block = ((1 << period) - 1) << period
        word = 0
        for offset in range(0, 1 << n, period * 2):
            word |= block << offset
        words[name] = word & mask
    return _compare(ins, outs, run_a, run_b, words, mask)


def check_equivalent(a: Any, b: Any, vectors: int = 2048, seed: int = 2024) -> None:
    """Assert equivalence; exhaustive when small, random otherwise.

    Raises :class:`NetworkError` with the counterexample on mismatch.
    """
    if len(input_names(a)) <= _EXHAUSTIVE_LIMIT:
        cex = exhaustive_equivalence(a, b)
    else:
        cex = random_equivalence(a, b, vectors=vectors, seed=seed)
    if cex is not None:
        raise NetworkError(f"circuits differ: {cex}")
