"""Equivalence checking on top of the bit-parallel kernel.

All circuit representations in this package (Boolean networks, subject
graphs, mapped netlists, LUT networks) are evaluated through
:mod:`repro.network.bitsim`: one topological pass over packed big-int
words — the full ``2**n``-lane truth-table batch up to
:data:`~repro.network.bitsim.EXHAUSTIVE_LIMIT` inputs, a seeded random
batch beyond.  An equivalence check is then a single XOR per common
output; the counterexample is read off the first set bit of the
difference word.

The per-vector scalar engine is retained behind ``engine='scalar'`` as
the reference oracle — it produces bit-identical difference words, hence
identical counterexamples (the differential property tests pin this).
The random batch width and seed follow ``REPRO_SIM_VECTORS`` /
``REPRO_SIM_SEED`` (:func:`~repro.network.bitsim.configured_vectors`,
:func:`~repro.network.bitsim.configured_seed`) unless given explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network import bitsim
from repro.network.bitsim import EXHAUSTIVE_LIMIT as _EXHAUSTIVE_LIMIT
from repro.network.bitsim import SimObject

__all__ = [
    "Counterexample",
    "simulate_outputs",
    "random_equivalence",
    "exhaustive_equivalence",
    "check_equivalent",
    "input_names",
    "output_names",
]


@dataclass
class Counterexample:
    """A distinguishing input assignment found by an equivalence check."""

    assignment: Dict[str, int]
    output: str
    value_a: int
    value_b: int

    def __str__(self) -> str:
        bits = ", ".join(f"{k}={v}" for k, v in sorted(self.assignment.items()))
        return (
            f"output {self.output!r} differs ({self.value_a} vs {self.value_b}) "
            f"on [{bits}]"
        )


def _adapt(obj: Any) -> Tuple[List[str], List[str], Callable[[Dict[str, int], int], Dict[str, int]]]:
    """Return (input names, output names, simulate fn) for any circuit object."""
    sim = bitsim.adapt(obj)
    return sim.inputs, sim.outputs, sim.run


def input_names(obj: Any) -> List[str]:
    """Combinational input names of any supported circuit object."""
    return bitsim.adapt(obj).inputs


def output_names(obj: Any) -> List[str]:
    """Combinational output names of any supported circuit object."""
    return bitsim.adapt(obj).outputs


def simulate_outputs(obj: Any, inputs: Dict[str, int], mask: int) -> Dict[str, int]:
    """Simulate any supported circuit object; returns output name -> word."""
    return bitsim.simulate_words(obj, inputs, mask)


def _compare(
    ins: Sequence[str],
    outs_common: Sequence[str],
    sim_a: SimObject,
    sim_b: SimObject,
    words: Dict[str, int],
    mask: int,
    engine: str,
) -> Optional[Counterexample]:
    res_a = bitsim.simulate_words(sim_a, words, mask, engine=engine)
    res_b = bitsim.simulate_words(sim_b, words, mask, engine=engine)
    for name in outs_common:
        diff = (res_a[name] ^ res_b[name]) & mask
        if diff:
            lane = (diff & -diff).bit_length() - 1
            assignment = {k: (words[k] >> lane) & 1 for k in ins}
            return Counterexample(
                assignment,
                name,
                (res_a[name] >> lane) & 1,
                (res_b[name] >> lane) & 1,
            )
    return None


def _align(a: Any, b: Any) -> Tuple[List[str], List[str], SimObject, SimObject]:
    sim_a = bitsim.adapt(a)
    sim_b = bitsim.adapt(b)
    ins_a, ins_b = sim_a.inputs, sim_b.inputs
    if set(ins_a) != set(ins_b):
        raise NetworkError(
            "input mismatch: "
            f"only-a={sorted(set(ins_a) - set(ins_b))}, "
            f"only-b={sorted(set(ins_b) - set(ins_a))}"
        )
    common = [name for name in sim_a.outputs if name in set(sim_b.outputs)]
    if not common:
        raise NetworkError("no common outputs to compare")
    return ins_a, common, sim_a, sim_b


def random_equivalence(
    a: Any,
    b: Any,
    vectors: Optional[int] = None,
    seed: Optional[int] = None,
    engine: str = "packed",
) -> Optional[Counterexample]:
    """Random-batch equivalence check; None means no difference found.

    One seeded batch of ``vectors`` lanes (``REPRO_SIM_VECTORS`` /
    ``REPRO_SIM_SEED`` supply the defaults) plus the all-0 / all-1
    corner probes, evaluated in one pass per circuit.
    """
    ins, outs, sim_a, sim_b = _align(a, b)
    words, mask = bitsim.random_words(ins, vectors=vectors, seed=seed)
    cex = _compare(ins, outs, sim_a, sim_b, words, mask, engine)
    if cex is not None:
        return cex
    # Also probe the all-0 / all-1 corners, cheap and often revealing.
    for fill in (0, mask):
        corner = {name: fill for name in ins}
        cex = _compare(ins, outs, sim_a, sim_b, corner, mask, engine)
        if cex is not None:
            return cex
    return None


def exhaustive_equivalence(
    a: Any, b: Any, engine: str = "packed"
) -> Optional[Counterexample]:
    """Exhaustive equivalence for circuits with at most 16 inputs.

    Simulates all ``2**n`` assignments in a single pass using one wide
    tiling word per input, then XORs the packed output tables.
    """
    ins, outs, sim_a, sim_b = _align(a, b)
    words, mask = bitsim.exhaustive_words(ins)
    return _compare(ins, outs, sim_a, sim_b, words, mask, engine)


def check_equivalent(
    a: Any,
    b: Any,
    vectors: Optional[int] = None,
    seed: Optional[int] = None,
    engine: str = "packed",
) -> None:
    """Assert equivalence; exhaustive when small, random otherwise.

    Raises :class:`NetworkError` with the counterexample on mismatch.
    """
    if len(input_names(a)) <= _EXHAUSTIVE_LIMIT:
        cex = exhaustive_equivalence(a, b, engine=engine)
    else:
        cex = random_equivalence(a, b, vectors=vectors, seed=seed, engine=engine)
    if cex is not None:
        raise NetworkError(f"circuits differ: {cex}")
