"""Interchange formats for mapped netlists: ``.gate`` BLIF and Verilog.

SIS writes technology-mapped circuits as BLIF with ``.gate`` statements
(one library-cell instance per line, named pin connections).  This module
provides that format in both directions, plus a self-contained structural
Verilog writer (cell modules are generated from the gates' Boolean
expressions, so the output simulates stand-alone).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from repro.core.netlist import MappedGate, MappedNetlist
from repro.errors import LibraryError, ParseError
from repro.library.gate import Gate, GateLibrary
from repro.network.expr import And, Const, Expr, Not, Or, Var, Xor

__all__ = [
    "dumps_mapped_blif",
    "loads_mapped_blif",
    "read_mapped_blif",
    "write_mapped_blif",
    "dumps_verilog",
    "write_verilog",
]


# ----------------------------------------------------------------------
# .gate BLIF
# ----------------------------------------------------------------------


def dumps_mapped_blif(netlist: MappedNetlist) -> str:
    """Serialise a mapped netlist as BLIF ``.gate`` statements."""
    lines: List[str] = [f".model {netlist.name}"]
    if netlist.pis:
        lines.append(".inputs " + " ".join(netlist.pis))
    po_names = []
    aliases: List[str] = []
    for name, signal in netlist.pos:
        po_names.append(name)
        if name != signal:
            # BLIF has no net aliasing; emit a named buffer cover.
            aliases.append(f".names {signal} {name}\n1 1")
    lines.append(".outputs " + " ".join(po_names))
    for gate in netlist.topological_gates():
        conns = " ".join(
            f"{pin}={signal}" for pin, signal in zip(gate.gate.inputs, gate.inputs)
        )
        out = f"{gate.gate.output}={gate.output}"
        lines.append(f".gate {gate.gate.name} {conns} {out}".replace("  ", " "))
    lines.extend(aliases)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def loads_mapped_blif(text: str, library: GateLibrary) -> MappedNetlist:
    """Parse ``.gate`` BLIF back into a mapped netlist.

    ``.names`` covers are accepted only as the single-row buffers the
    writer emits for PO aliases.
    """
    netlist: Optional[MappedNetlist] = None
    outputs: List[str] = []
    alias: Dict[str, str] = {}
    pending_alias: Optional[List[str]] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        if pending_alias is not None:
            if tokens != ["1", "1"]:
                raise ParseError(
                    "only identity .names covers are allowed in mapped BLIF",
                    lineno,
                )
            alias[pending_alias[1]] = pending_alias[0]
            pending_alias = None
            continue
        if head == ".model":
            netlist = MappedNetlist(tokens[1] if len(tokens) > 1 else "mapped")
        elif head == ".inputs":
            assert netlist is not None
            for sig in tokens[1:]:
                netlist.add_pi(sig)
        elif head == ".outputs":
            outputs.extend(tokens[1:])
        elif head == ".gate":
            if netlist is None:
                raise ParseError(".gate before .model", lineno)
            if len(tokens) < 3:
                raise ParseError("malformed .gate line", lineno)
            gate = library.gate(tokens[1])
            conns: Dict[str, str] = {}
            for item in tokens[2:]:
                if "=" not in item:
                    raise ParseError(f"bad connection {item!r}", lineno)
                pin, signal = item.split("=", 1)
                conns[pin] = signal
            try:
                inputs = [conns[pin] for pin in gate.inputs]
                output = conns[gate.output]
            except KeyError as exc:
                raise ParseError(
                    f"gate {gate.name!r}: missing connection {exc}", lineno
                ) from None
            netlist.add_gate(gate, inputs, output)
        elif head == ".names":
            if len(tokens) != 3:
                raise ParseError(
                    "only 2-signal identity .names are allowed here", lineno
                )
            pending_alias = tokens[1:]
        elif head == ".end":
            break
        else:
            raise ParseError(f"unsupported construct {head!r} in mapped BLIF",
                             lineno)

    if netlist is None:
        raise ParseError("no .model found")
    for name in outputs:
        netlist.add_po(name, alias.get(name, name))
    netlist.check()
    return netlist


def write_mapped_blif(netlist: MappedNetlist, path: Union[str, os.PathLike]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_mapped_blif(netlist))


def read_mapped_blif(
    path: Union[str, os.PathLike], library: GateLibrary
) -> MappedNetlist:
    with open(path, "r", encoding="utf-8") as handle:
        return loads_mapped_blif(handle.read(), library)


# ----------------------------------------------------------------------
# Verilog
# ----------------------------------------------------------------------

_ID_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$")


def _vl_escape(name: str) -> str:
    """Escape identifiers Verilog would reject."""
    if name and name[0].isalpha() and all(c in _ID_OK for c in name):
        return name
    return f"\\{name} "


def _vl_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return _vl_escape(expr.name)
    if isinstance(expr, Const):
        return "1'b1" if expr.value else "1'b0"
    if isinstance(expr, Not):
        return f"~({_vl_expr(expr.child)})"
    if isinstance(expr, And):
        return "(" + " & ".join(_vl_expr(a) for a in expr.args) + ")"
    if isinstance(expr, Or):
        return "(" + " | ".join(_vl_expr(a) for a in expr.args) + ")"
    if isinstance(expr, Xor):
        return "(" + " ^ ".join(_vl_expr(a) for a in expr.args) + ")"
    raise LibraryError(f"cannot translate expression node {type(expr).__name__}")


def _cell_module(gate: Gate) -> str:
    ports = ", ".join(gate.inputs + [gate.output])
    lines = [f"module {gate.name}({ports});"]
    for pin in gate.inputs:
        lines.append(f"  input {pin};")
    lines.append(f"  output {gate.output};")
    lines.append(f"  assign {gate.output} = {_vl_expr(gate.expr)};")
    lines.append("endmodule")
    return "\n".join(lines)


def dumps_verilog(netlist: MappedNetlist, top: Optional[str] = None) -> str:
    """Self-contained structural Verilog: cell modules + the mapped top."""
    used: Dict[str, Gate] = {}
    for gate in netlist.gates:
        used[gate.gate.name] = gate.gate

    lines: List[str] = [f"// mapped netlist {netlist.name}"]
    for gate in used.values():
        lines.append(_cell_module(gate))
        lines.append("")

    top = top or netlist.name.replace("-", "_")
    po_names = [name for name, _ in netlist.pos]
    ports = ", ".join(
        [_vl_escape(p) for p in netlist.pis] + [_vl_escape(p) for p in po_names]
    )
    lines.append(f"module {top}({ports});")
    for pi in netlist.pis:
        lines.append(f"  input {_vl_escape(pi)};")
    for name in po_names:
        lines.append(f"  output {_vl_escape(name)};")
    internal = {g.output for g in netlist.gates} - set(po_names)
    for signal in sorted(internal):
        lines.append(f"  wire {_vl_escape(signal)};")
    for gate in netlist.topological_gates():
        conns = ", ".join(
            f".{pin}({_vl_escape(sig)})"
            for pin, sig in zip(gate.gate.inputs, gate.inputs)
        )
        out_conn = f".{gate.gate.output}({_vl_escape(gate.output)})"
        lines.append(
            f"  {gate.gate.name} {_vl_escape(gate.instance)} ({conns}, {out_conn});"
        )
    for name, signal in netlist.pos:
        if name != signal:
            lines.append(f"  assign {_vl_escape(name)} = {_vl_escape(signal)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(netlist: MappedNetlist, path: Union[str, os.PathLike]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_verilog(netlist))
