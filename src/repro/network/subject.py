"""Subject graphs: NAND2-INV DAGs, the input to technology mapping.

Following Keutzer's formulation (and the paper's Section 1), both the
circuit to be mapped and every library gate are decomposed into networks of
two-input NAND gates and inverters.  The decomposed circuit is the
*subject graph*; decomposed gates are *pattern graphs*
(:mod:`repro.library.patterns` reuses the same node structure).

A :class:`SubjectGraph` keeps nodes in creation order, which is guaranteed
topological (fanins are created before fanouts).  Structural hashing merges
identical ``(type, fanins)`` nodes so the subject graph is compact; the
paper's optimality claim is *with respect to the chosen subject graph*, so
any fixed, deterministic construction is faithful.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetworkError

__all__ = ["NodeType", "SubjectNode", "SubjectGraph"]


class NodeType(enum.Enum):
    """Node kinds appearing in subject and pattern graphs."""

    PI = "pi"
    INV = "inv"
    NAND2 = "nand2"

    def arity(self) -> int:
        if self is NodeType.PI:
            return 0
        if self is NodeType.INV:
            return 1
        return 2


class SubjectNode:
    """One subject-graph node.

    Attributes:
        uid: dense integer id, unique within the graph, topological.
        kind: :class:`NodeType`.
        fanins: tuple of fanin nodes (empty for PIs).
        fanouts: list of reader nodes (maintained by the graph).
        name: optional signal name (PIs and nodes that drive POs get one).
    """

    __slots__ = ("uid", "kind", "fanins", "fanouts", "name")

    def __init__(
        self,
        uid: int,
        kind: NodeType,
        fanins: Tuple["SubjectNode", ...],
        name: Optional[str] = None,
    ):
        if len(fanins) != kind.arity():
            raise NetworkError(
                f"{kind.value} node must have {kind.arity()} fanins, got {len(fanins)}"
            )
        self.uid = uid
        self.kind = kind
        self.fanins = fanins
        self.fanouts: List["SubjectNode"] = []
        self.name = name

    @property
    def is_pi(self) -> bool:
        return self.kind is NodeType.PI

    def fanout_count(self) -> int:
        return len(self.fanouts)

    def __repr__(self) -> str:
        fanins = ",".join(str(f.uid) for f in self.fanins)
        label = f" {self.name!r}" if self.name else ""
        return f"<{self.kind.value}#{self.uid}({fanins}){label}>"


class SubjectGraph:
    """A NAND2-INV DAG with named primary inputs and outputs."""

    __slots__ = ("name", "nodes", "pis", "pos", "_pi_by_name", "_strash")

    def __init__(self, name: str = "subject"):
        self.name = name
        self.nodes: List[SubjectNode] = []
        self.pis: List[SubjectNode] = []
        #: list of (po name, driver node) pairs; several POs may share a
        #: driver, and a PO may be driven by a PI directly.
        self.pos: List[Tuple[str, SubjectNode]] = []
        self._pi_by_name: Dict[str, SubjectNode] = {}
        self._strash: Dict[Tuple[NodeType, Tuple[int, ...]], SubjectNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> SubjectNode:
        if name in self._pi_by_name:
            raise NetworkError(f"duplicate PI {name!r}")
        node = SubjectNode(len(self.nodes), NodeType.PI, (), name)
        self.nodes.append(node)
        self.pis.append(node)
        self._pi_by_name[name] = node
        return node

    def pi(self, name: str) -> SubjectNode:
        try:
            return self._pi_by_name[name]
        except KeyError:
            raise NetworkError(f"no PI named {name!r}") from None

    def add_inv(self, fanin: SubjectNode, share: bool = True) -> SubjectNode:
        return self._add(NodeType.INV, (fanin,), share)

    def add_nand2(
        self, a: SubjectNode, b: SubjectNode, share: bool = True
    ) -> SubjectNode:
        return self._add(NodeType.NAND2, (a, b), share)

    def _add(
        self, kind: NodeType, fanins: Tuple[SubjectNode, ...], share: bool
    ) -> SubjectNode:
        for fanin in fanins:
            if fanin is not self.nodes[fanin.uid]:
                raise NetworkError("fanin belongs to a different graph")
        key = None
        if share:
            ids = tuple(f.uid for f in fanins)
            if kind is NodeType.NAND2:
                ids = tuple(sorted(ids))
            key = (kind, ids)
            existing = self._strash.get(key)
            if existing is not None:
                return existing
        node = SubjectNode(len(self.nodes), kind, fanins)
        self.nodes.append(node)
        for fanin in fanins:
            fanin.fanouts.append(node)
        if key is not None:
            self._strash[key] = node
        return node

    def set_po(self, name: str, driver: SubjectNode) -> None:
        self.pos.append((name, driver))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count including PIs."""
        return len(self.nodes)

    @property
    def n_gates(self) -> int:
        """Internal (NAND2 + INV) node count."""
        return len(self.nodes) - len(self.pis)

    def topological(self) -> List[SubjectNode]:
        """Nodes in topological order (creation order is topological)."""
        return list(self.nodes)

    def po_drivers(self) -> List[SubjectNode]:
        return [driver for _, driver in self.pos]

    def depth(self) -> int:
        """Longest PI-to-PO path length in nodes (unit delay per gate)."""
        level = [0] * len(self.nodes)
        for node in self.nodes:
            if node.fanins:
                level[node.uid] = 1 + max(level[f.uid] for f in node.fanins)
        return max((level[d.uid] for d in self.po_drivers()), default=0)

    def transitive_fanin(self, roots: Iterable[SubjectNode]) -> List[SubjectNode]:
        """All nodes in the fanin cones of ``roots`` (roots included)."""
        seen: Dict[int, SubjectNode] = {}
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen[node.uid] = node
            stack.extend(node.fanins)
        return [self.nodes[uid] for uid in sorted(seen)]

    def multi_fanout_nodes(self) -> List[SubjectNode]:
        """Internal nodes with fanout >= 2 (the tree-decomposition cut points)."""
        po_refs: Dict[int, int] = {}
        for _, driver in self.pos:
            po_refs[driver.uid] = po_refs.get(driver.uid, 0) + 1
        out = []
        for node in self.nodes:
            if node.is_pi:
                continue
            uses = len(node.fanouts) + po_refs.get(node.uid, 0)
            if uses >= 2:
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, inputs: Dict[str, int], mask: int) -> Dict[str, int]:
        """Bit-parallel simulation; returns PO name -> packed word."""
        values: List[int] = [0] * len(self.nodes)
        for pi in self.pis:
            if pi.name not in inputs:
                raise NetworkError(f"missing input word for {pi.name!r}")
            values[pi.uid] = inputs[pi.name] & mask
        for node in self.nodes:
            if node.kind is NodeType.INV:
                values[node.uid] = ~values[node.fanins[0].uid] & mask
            elif node.kind is NodeType.NAND2:
                a, b = node.fanins
                values[node.uid] = ~(values[a.uid] & values[b.uid]) & mask
        return {name: values[driver.uid] for name, driver in self.pos}

    def stats(self) -> Dict[str, int]:
        inv = sum(1 for n in self.nodes if n.kind is NodeType.INV)
        nand = sum(1 for n in self.nodes if n.kind is NodeType.NAND2)
        return {
            "pis": len(self.pis),
            "pos": len(self.pos),
            "inv": inv,
            "nand2": nand,
            "gates": inv + nand,
            "depth": self.depth(),
            "multi_fanout": len(self.multi_fanout_nodes()),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SubjectGraph({self.name!r}, pis={s['pis']}, pos={s['pos']}, "
            f"gates={s['gates']}, depth={s['depth']})"
        )
