"""Boolean expression AST and parser (genlib / eqn style syntax).

The grammar accepted matches what SIS's genlib reader understands, plus a
few conveniences::

    expr    := term  ( '+' term )*
    term    := xfact ( '^' xfact )*            # xor binds tighter than or
    xfact   := factor ( ('*' | adjacency) factor )*
    factor  := '!' factor | primary "'"*
    primary := IDENT | '0' | '1' | 'CONST0' | 'CONST1' | '(' expr ')'

Adjacency (two primaries separated by whitespace) denotes AND, as in
``a b + c d``.  ``!`` is prefix complement, ``'`` postfix complement.

Expression objects are immutable and hashable.  ``And``/``Or``/``Xor`` are
n-ary.  :func:`parse_expr` produces the AST; :meth:`Expr.to_tt` tabulates
it over an explicit variable order.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ParseError
from repro.network.functions import TruthTable

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
]


class Expr:
    """Base class for Boolean expression nodes (immutable)."""

    def support(self) -> List[str]:
        """Sorted list of distinct variable names appearing in the tree."""
        names: set = set()
        self._collect_support(names)
        return sorted(names)

    def _collect_support(self, acc: set) -> None:
        raise NotImplementedError

    def to_tt(self, var_order: Sequence[str] | None = None) -> TruthTable:
        """Tabulate over ``var_order`` (defaults to sorted support)."""
        if var_order is None:
            var_order = self.support()
        index = {name: i for i, name in enumerate(var_order)}
        missing = [n for n in self.support() if n not in index]
        if missing:
            raise ValueError(f"variables missing from var_order: {missing}")
        env = {
            name: TruthTable.variable(i, len(var_order))
            for name, i in index.items()
        }
        return self._eval_tt(env, len(var_order))

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        raise NotImplementedError

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        """Bit-parallel evaluation with packed words per variable."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> object:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_string()})"

    def to_string(self) -> str:
        """Render in genlib syntax (fully parenthesised where needed)."""
        raise NotImplementedError


class Var(Expr):
    """A named input variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _collect_support(self, acc: set) -> None:
        acc.add(self.name)

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        return env[self.name]

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        return env[self.name] & mask

    def _key(self) -> object:
        return self.name

    def to_string(self) -> str:
        return self.name


class Const(Expr):
    """Constant 0 or 1."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if value not in (0, 1):
            raise ValueError("constant must be 0 or 1")
        self.value = value

    def _collect_support(self, acc: set) -> None:
        pass

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        return TruthTable.const1(n) if self.value else TruthTable.const0(n)

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        return mask if self.value else 0

    def _key(self) -> object:
        return self.value

    def to_string(self) -> str:
        return "CONST1" if self.value else "CONST0"


class Not(Expr):
    """Complement of a subexpression."""

    __slots__ = ("child",)

    def __init__(self, child: Expr):
        self.child = child

    def _collect_support(self, acc: set) -> None:
        self.child._collect_support(acc)

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        return ~self.child._eval_tt(env, n)

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        return ~self.child.eval_words(env, mask) & mask

    def _key(self) -> object:
        return self.child

    def to_string(self) -> str:
        inner = self.child.to_string()
        if isinstance(self.child, (Var, Const, Not)):
            return f"!{inner}"
        return f"!({inner})"


class _Nary(Expr):
    """Shared implementation for n-ary associative operators."""

    __slots__ = ("args",)
    _symbol = "?"

    def __init__(self, args: Sequence[Expr]):
        flat: List[Expr] = []
        for arg in args:
            if type(arg) is type(self):
                flat.extend(arg.args)  # type: ignore[attr-defined]
            else:
                flat.append(arg)
        if len(flat) < 2:
            raise ValueError(f"{type(self).__name__} needs at least 2 operands")
        self.args = tuple(flat)

    def _collect_support(self, acc: set) -> None:
        for arg in self.args:
            arg._collect_support(acc)

    def _key(self) -> object:
        return self.args

    def to_string(self) -> str:
        parts = []
        for arg in self.args:
            text = arg.to_string()
            if isinstance(arg, _Nary) and _precedence(arg) < _precedence(self):
                text = f"({text})"
            parts.append(text)
        return self._symbol.join(parts)


class And(_Nary):
    """N-ary conjunction."""

    _symbol = "*"

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        out = TruthTable.const1(n)
        for arg in self.args:
            out = out & arg._eval_tt(env, n)
        return out

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        out = mask
        for arg in self.args:
            out &= arg.eval_words(env, mask)
            if not out:
                break
        return out


class Or(_Nary):
    """N-ary disjunction."""

    _symbol = "+"

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        out = TruthTable.const0(n)
        for arg in self.args:
            out = out | arg._eval_tt(env, n)
        return out

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        out = 0
        for arg in self.args:
            out |= arg.eval_words(env, mask)
            if out == mask:
                break
        return out


class Xor(_Nary):
    """N-ary exclusive or."""

    _symbol = "^"

    def _eval_tt(self, env: Dict[str, TruthTable], n: int) -> TruthTable:
        out = TruthTable.const0(n)
        for arg in self.args:
            out = out ^ arg._eval_tt(env, n)
        return out

    def eval_words(self, env: Dict[str, int], mask: int) -> int:
        out = 0
        for arg in self.args:
            out ^= arg.eval_words(env, mask)
        return out & mask


def _precedence(node: Expr) -> int:
    if isinstance(node, Or):
        return 1
    if isinstance(node, Xor):
        return 2
    if isinstance(node, And):
        return 3
    return 4


# ----------------------------------------------------------------------
# Tokenizer / parser
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\.\[\]<>]*)"
    r"|(?P<const>[01])"
    r"|(?P<op>[!'*+^()]))"
)

_Token = Tuple[str, str]


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                return
            raise ParseError(f"unexpected character {text[pos]!r} in expression")
        pos = match.end()
        if match.lastgroup == "ident":
            name = match.group("ident")
            if name == "CONST0":
                yield ("const", "0")
            elif name == "CONST1":
                yield ("const", "1")
            else:
                yield ("ident", name)
        elif match.lastgroup == "const":
            yield ("const", match.group("const"))
        else:
            yield ("op", match.group("op"))


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(_tokenize(text))
        self.pos = 0
        self.text = text

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of expression: {self.text!r}")
        self.pos += 1
        return token

    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.peek() is not None:
            raise ParseError(
                f"trailing tokens after expression: {self.text!r}"
            )
        return expr

    def parse_or(self) -> Expr:
        terms = [self.parse_xor()]
        while self.peek() == ("op", "+"):
            self.next()
            terms.append(self.parse_xor())
        return terms[0] if len(terms) == 1 else Or(terms)

    def parse_xor(self) -> Expr:
        terms = [self.parse_and()]
        while self.peek() == ("op", "^"):
            self.next()
            terms.append(self.parse_and())
        return terms[0] if len(terms) == 1 else Xor(terms)

    def parse_and(self) -> Expr:
        terms = [self.parse_factor()]
        while True:
            token = self.peek()
            if token == ("op", "*"):
                self.next()
                terms.append(self.parse_factor())
            elif token is not None and (
                token[0] in ("ident", "const")
                or token == ("op", "(")
                or token == ("op", "!")
            ):
                # Adjacency denotes AND: "a b" == "a*b".
                terms.append(self.parse_factor())
            else:
                break
        return terms[0] if len(terms) == 1 else And(terms)

    def parse_factor(self) -> Expr:
        token = self.peek()
        if token == ("op", "!"):
            self.next()
            return Not(self.parse_factor())
        expr = self.parse_primary()
        while self.peek() == ("op", "'"):
            self.next()
            expr = Not(expr)
        return expr

    def parse_primary(self) -> Expr:
        kind, value = self.next()
        if kind == "ident":
            return Var(value)
        if kind == "const":
            return Const(int(value))
        if (kind, value) == ("op", "("):
            expr = self.parse_or()
            if self.next() != ("op", ")"):
                raise ParseError(f"missing ')' in expression: {self.text!r}")
            return expr
        raise ParseError(f"unexpected token {value!r} in expression: {self.text!r}")


def parse_expr(text: str) -> Expr:
    """Parse a genlib/eqn-style Boolean expression into an :class:`Expr`."""
    return _Parser(text).parse()
