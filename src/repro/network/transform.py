"""Network transformations: sweep (cleanup) and cone extraction.

The SIS ``sweep`` equivalent: constant propagation, identity-node
collapsing and dangling-logic removal on a :class:`BooleanNetwork` —
useful before decomposition when circuits come from external BLIF with
dead or degenerate logic.  :func:`extract_cone` carves out the transitive
fanin of selected outputs as a standalone network, the usual way to
isolate a timing path or shrink a failing case.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import NetworkError
from repro.network.bnet import BooleanNetwork
from repro.network.functions import TruthTable

__all__ = ["sweep", "extract_cone", "SweepReport"]


class SweepReport:
    """What :func:`sweep` changed."""

    def __init__(self, network: BooleanNetwork, removed: int,
                 constants_propagated: int, identities_collapsed: int):
        self.network = network
        self.removed = removed
        self.constants_propagated = constants_propagated
        self.identities_collapsed = identities_collapsed

    def __repr__(self) -> str:
        return (
            f"SweepReport(removed={self.removed}, "
            f"constants={self.constants_propagated}, "
            f"identities={self.identities_collapsed})"
        )


def sweep(net: BooleanNetwork) -> SweepReport:
    """Constant propagation + identity collapsing + dead-logic removal.

    Returns a report whose ``network`` is a new, functionally equivalent
    :class:`BooleanNetwork`.  Constant outputs are kept as constant
    nodes (decomposition legalises them later).  Latch boundaries are
    respected: latch inputs/outputs are preserved even when constant, so
    sequential behaviour (e.g. reset states) is untouched.
    """
    constants: Dict[str, int] = {}
    alias: Dict[str, str] = {}
    n_const = 0
    n_ident = 0

    protected = set(net.pos) | {l.input for l in net.latches}

    def resolve(signal: str) -> str:
        while signal in alias:
            signal = alias[signal]
        return signal

    out = BooleanNetwork(net.name)
    for pi in net.pis:
        out.add_pi(pi)
    for latch in net.latches:
        out.add_latch(latch.input, latch.output, latch.init)

    new_nodes: List[Tuple[str, TruthTable, List[str]]] = []
    for node in net.topological_order():
        fanins = [resolve(f) for f in node.fanins]
        tt = node.tt
        # Substitute known constants.
        for idx, fanin in enumerate(fanins):
            if fanin in constants:
                tt = tt.cofactor(idx, constants[fanin])
        small, keep = tt.shrunk()
        kept_fanins = [fanins[k] for k in keep]
        if small.is_constant():
            # shrunk() leaves no variables on a constant function.
            if node.name in protected:
                new_nodes.append((node.name, small, []))
            else:
                constants[node.name] = 1 if small.is_const1() else 0
                n_const += 1
            continue
        if small.n_vars == 1 and small.bits == 0b10:
            # Identity of a single fanin.
            if node.name in protected:
                new_nodes.append((node.name, small, kept_fanins))
            else:
                alias[node.name] = kept_fanins[0]
                n_ident += 1
            continue
        new_nodes.append((node.name, small, kept_fanins))

    # Dead-logic removal: keep only cones of protected outputs.
    by_name = {name: (name, tt, fanins) for name, tt, fanins in new_nodes}
    needed: Set[str] = set()
    stack = [resolve(sig) for sig in sorted(protected)]
    while stack:
        signal = stack.pop()
        if signal in needed or signal not in by_name:
            continue
        needed.add(signal)
        stack.extend(by_name[signal][2])

    kept = 0
    for name, tt, fanins in new_nodes:
        if name in needed:
            out.add_node(name, tt, fanins)
            kept += 1
    removed = net.n_nodes - kept

    for po in net.pos:
        target = resolve(po)
        if po in constants or (target != po and not out.has_signal(po)):
            # PO collapsed to a constant or an alias: reintroduce a node
            # carrying the PO's name.
            if po in constants:
                out.add_node(
                    po,
                    TruthTable.const1(0) if constants[po] else TruthTable.const0(0),
                    [],
                )
            else:
                out.add_node(po, TruthTable(1, 0b10), [target])
        out.add_po(po)
    out.check()
    return SweepReport(out, removed, n_const, n_ident)


def extract_cone(
    net: BooleanNetwork,
    outputs: Sequence[str],
    name: Optional[str] = None,
) -> BooleanNetwork:
    """Standalone combinational network of the given outputs' fanin cones.

    Latch outputs encountered in the cone become primary inputs of the
    extracted network (the cone is cut at register boundaries).
    """
    if not outputs:
        raise NetworkError("extract_cone needs at least one output")
    sources = set(net.combinational_inputs())
    needed: Set[str] = set()
    stack = list(outputs)
    while stack:
        signal = stack.pop()
        if signal in needed:
            continue
        needed.add(signal)
        if signal in sources:
            continue
        stack.extend(net.node(signal).fanins)

    cone = BooleanNetwork(name or f"{net.name}_cone")
    for signal in net.combinational_inputs():
        if signal in needed:
            cone.add_pi(signal)
    for node in net.topological_order():
        if node.name in needed:
            cone.add_node(node.name, node.tt, node.fanins)
    for po in outputs:
        if not cone.has_signal(po):
            raise NetworkError(f"output {po!r} not found in the network")
        cone.add_po(po)
    cone.check()
    return cone
