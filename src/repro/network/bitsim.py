"""Bit-parallel Boolean kernel: the big-int truth-table engine.

Every circuit representation in this package — Boolean networks, subject
graphs, mapped netlists, LUT networks, expression ASTs and library
pattern graphs — can be evaluated over *packed words*: Python big-ints
holding one function value per bit lane.  This module is the single
kernel behind all of them.  One topological pass computes either

* the full packed truth table of every output (``<= 16`` primary
  inputs: the lanes enumerate all ``2**n`` assignments in minterm order,
  so an output word *is* a :class:`~repro.network.functions.TruthTable`),
  or
* a seeded random-vector batch (beyond 16 inputs; width configurable via
  ``REPRO_SIM_VECTORS`` / ``REPRO_SIM_SEED`` or keyword arguments).

The per-vector *scalar* engine is retained behind ``engine='scalar'`` as
the reference oracle: it re-runs the same adapter once per lane with a
one-bit mask (dict-based scalar simulation), and the differential
property tests pin the two engines bit-for-bit together.  Consumers —
:mod:`repro.network.simulate` equivalence, :mod:`repro.check`
certificates and library lint, the matcher's EXTENDED-match cross-check
— all sit on top of this module.

Every kernel invocation is accounted in :data:`SIM_STATS`
(:class:`repro.perf.counters.SimStats`), which the experiment harness
snapshots into per-run ``sim_vectors_per_sec`` counters.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import env
from repro.errors import EnvVarError, NetworkError
from repro.network.bnet import BooleanNetwork
from repro.network.expr import Expr
from repro.network.functions import TruthTable, variable_bits
from repro.network.subject import NodeType, SubjectGraph, SubjectNode
from repro.perf.counters import SimStats

__all__ = [
    "EXHAUSTIVE_LIMIT",
    "DEFAULT_VECTORS",
    "DEFAULT_SEED",
    "SIM_STATS",
    "SimObject",
    "adapt",
    "configured_vectors",
    "configured_seed",
    "exhaustive_words",
    "random_words",
    "simulate_words",
    "truth_tables",
    "cone_words",
    "pattern_table",
]

#: Above this many inputs the full truth table no longer fits a sane
#: big-int (2**16 lanes = 64 kbit words); callers fall back to random
#: batches.
EXHAUSTIVE_LIMIT = 16

#: Random-batch width when no override is given (one 4096-lane word).
DEFAULT_VECTORS = 4096

#: PRNG seed when no override is given.
DEFAULT_SEED = 2024

#: Process-wide kernel counters (snapshot around a run for deltas).
SIM_STATS = SimStats()


def configured_vectors(override: Optional[int] = None) -> int:
    """Random-batch width: explicit override > ``REPRO_SIM_VECTORS`` > default."""
    if override is not None:
        return override
    try:
        value = env.read_int("REPRO_SIM_VECTORS")
    except EnvVarError as exc:
        raise NetworkError(str(exc)) from exc
    if value is not None:
        if value <= 0:
            raise NetworkError(f"REPRO_SIM_VECTORS must be positive, got {value}")
        return value
    return DEFAULT_VECTORS


def configured_seed(override: Optional[int] = None) -> int:
    """PRNG seed: explicit override > ``REPRO_SIM_SEED`` > default."""
    if override is not None:
        return override
    try:
        value = env.read_int("REPRO_SIM_SEED")
    except EnvVarError as exc:
        raise NetworkError(str(exc)) from exc
    return DEFAULT_SEED if value is None else value


# ----------------------------------------------------------------------
# Adapters: one uniform view of every simulatable object
# ----------------------------------------------------------------------


@dataclass
class SimObject:
    """Uniform simulation view: input/output names plus a packed runner.

    ``run(words, mask)`` takes one packed word per input name and returns
    one packed word per output name, evaluated in a single topological
    pass (the packed engine calls it once; the scalar oracle calls it
    once per lane with ``mask=1``).
    """

    inputs: List[str]
    outputs: List[str]
    run: Callable[[Dict[str, int], int], Dict[str, int]]


def _adapt_expr(expr: Expr) -> SimObject:
    names = expr.support()

    def run(words: Dict[str, int], mask: int) -> Dict[str, int]:
        return {"out": expr.eval_words(words, mask) & mask}

    return SimObject(list(names), ["out"], run)


def _adapt_pattern(pattern: Any) -> SimObject:
    gate = pattern.gate

    def run(words: Dict[str, int], mask: int) -> Dict[str, int]:
        return {"out": _pattern_word(pattern, words, mask)}

    return SimObject(list(gate.inputs), ["out"], run)


def _pattern_word(pattern: Any, words: Dict[str, int], mask: int) -> int:
    """One packed pass over a pattern graph's NAND2-INV nodes."""
    values: Dict[int, int] = {}
    for node in pattern.nodes:  # topological, leaves first
        if node.is_leaf:
            values[node.uid] = words.get(node.pin, 0) & mask
        elif node.kind is NodeType.INV:
            values[node.uid] = ~values[node.fanins[0].uid] & mask
        else:
            a, b = node.fanins
            values[node.uid] = ~(values[a.uid] & values[b.uid]) & mask
    return values[pattern.root.uid]


def adapt(obj: Any) -> SimObject:
    """Build the uniform simulation view of any simulatable object.

    Supports :class:`BooleanNetwork`, :class:`SubjectGraph`,
    :class:`~repro.network.expr.Expr`, library pattern graphs, and any
    object implementing the ``sim_inputs``/``sim_outputs``/``simulate``
    protocol (mapped netlists, LUT networks).
    """
    if isinstance(obj, SimObject):
        return obj
    if isinstance(obj, BooleanNetwork):
        ins = obj.combinational_inputs()
        outs = obj.combinational_outputs()

        def run(words: Dict[str, int], mask: int) -> Dict[str, int]:
            values = obj.simulate(words, mask)
            return {name: values[name] for name in outs}

        return SimObject(ins, outs, run)
    if isinstance(obj, SubjectGraph):
        ins = [pi.name for pi in obj.pis]
        outs = [name for name, _ in obj.pos]
        return SimObject(ins, outs, obj.simulate)
    if isinstance(obj, Expr):
        return _adapt_expr(obj)
    if hasattr(obj, "sim_inputs") and hasattr(obj, "sim_outputs"):
        return SimObject(
            list(obj.sim_inputs()), list(obj.sim_outputs()), obj.simulate
        )
    if hasattr(obj, "gate") and hasattr(obj, "root") and hasattr(obj, "nodes"):
        return _adapt_pattern(obj)
    raise NetworkError(f"cannot simulate object of type {type(obj).__name__}")


# ----------------------------------------------------------------------
# Input-word construction
# ----------------------------------------------------------------------


def exhaustive_words(names: Sequence[str]) -> Tuple[Dict[str, int], int]:
    """Tiling words enumerating all ``2**n`` assignments, plus the lane mask.

    Input ``names[i]`` carries the period-``2**i`` tiling pattern, so lane
    ``a`` of every word holds assignment ``a`` in minterm order and an
    output word is the truth table over ``names`` order.
    """
    n = len(names)
    if n > EXHAUSTIVE_LIMIT:
        raise NetworkError(
            f"{n} inputs is too many for exhaustive simulation "
            f"(limit {EXHAUSTIVE_LIMIT})"
        )
    mask = (1 << (1 << n)) - 1
    return {name: variable_bits(i, n) for i, name in enumerate(names)}, mask


def random_words(
    names: Sequence[str],
    vectors: Optional[int] = None,
    seed: Optional[int] = None,
) -> Tuple[Dict[str, int], int]:
    """One seeded random word per input, ``vectors`` lanes wide."""
    width = configured_vectors(vectors)
    rng = random.Random(configured_seed(seed))
    mask = (1 << width) - 1
    return {name: rng.getrandbits(width) for name in names}, mask


# ----------------------------------------------------------------------
# The engines
# ----------------------------------------------------------------------


def _scalar_run(
    sim: SimObject, words: Dict[str, int], mask: int
) -> Dict[str, int]:
    """The reference oracle: one full evaluation pass per active lane."""
    outs = {name: 0 for name in sim.outputs}
    lanes = mask
    while lanes:
        lane = (lanes & -lanes).bit_length() - 1
        lanes &= lanes - 1
        env = {name: (words.get(name, 0) >> lane) & 1 for name in sim.inputs}
        result = sim.run(env, 1)
        for name in sim.outputs:
            outs[name] |= (result[name] & 1) << lane
    return outs


def simulate_words(
    obj: Any,
    words: Dict[str, int],
    mask: int,
    engine: str = "packed",
) -> Dict[str, int]:
    """Evaluate ``obj`` over packed input words; returns output words.

    ``engine='packed'`` runs one topological pass over big-int words;
    ``engine='scalar'`` runs the per-vector reference oracle.  Both
    return bit-identical words (the differential tests enforce it).
    """
    sim = adapt(obj)
    if engine not in ("packed", "scalar"):
        raise ValueError(f"unknown simulation engine {engine!r}")
    start = time.perf_counter()
    if engine == "packed":
        out = sim.run(words, mask)
    else:
        out = _scalar_run(sim, words, mask)
    SIM_STATS.record(
        vectors=bin(mask).count("1"),
        seconds=time.perf_counter() - start,
        scalar=engine == "scalar",
    )
    return {name: out[name] & mask for name in sim.outputs}


def truth_tables(
    obj: Any, engine: str = "packed"
) -> Tuple[List[str], Dict[str, TruthTable]]:
    """Full truth tables of every output, in one packed pass.

    Returns the input-name order the tables are expressed over and a map
    from output name to its :class:`TruthTable`.  Limited to
    :data:`EXHAUSTIVE_LIMIT` inputs.
    """
    sim = adapt(obj)
    words, mask = exhaustive_words(sim.inputs)
    out = simulate_words(sim, words, mask, engine=engine)
    n = len(sim.inputs)
    return list(sim.inputs), {
        name: TruthTable(n, word) for name, word in out.items()
    }


# ----------------------------------------------------------------------
# Cone and pattern evaluation (matcher / library-lint helpers)
# ----------------------------------------------------------------------


def cone_words(
    root: SubjectNode, leaf_words: Dict[int, int], mask: int
) -> int:
    """Packed word of a subject cone, stopping at the given leaf nodes.

    ``leaf_words`` maps subject uid -> packed word for every cone leaf;
    the walk from ``root`` must terminate on those leaves (reaching a
    primary input outside the leaf set is an error — the cone is not
    closed).  Used by the matcher to cross-check that an EXTENDED match's
    cone really computes its gate's function.
    """
    memo: Dict[int, int] = dict(leaf_words)

    def value(node: SubjectNode) -> int:
        word = memo.get(node.uid)
        if word is not None:
            return word
        if node.kind is NodeType.INV:
            word = ~value(node.fanins[0]) & mask
        elif node.kind is NodeType.NAND2:
            a, b = node.fanins
            word = ~(value(a) & value(b)) & mask
        else:
            raise NetworkError(
                f"cone evaluation reached node {node.uid} "
                f"({node.kind.value}) outside the leaf set"
            )
        memo[node.uid] = word
        return word

    return value(root)


def pattern_table(pattern: Any, inputs: Sequence[str]) -> TruthTable:
    """Exhaustive truth table of a pattern graph over ``inputs`` order.

    One packed pass over the pattern's NAND2-INV nodes using the shared
    cached tiling words; the library linter's L003 round trip and the
    pattern adapters both use it.
    """
    words, mask = exhaustive_words(inputs)
    start = time.perf_counter()
    bits = _pattern_word(pattern, words, mask)
    SIM_STATS.record(
        vectors=bin(mask).count("1"), seconds=time.perf_counter() - start
    )
    return TruthTable(len(inputs), bits)
