"""Boolean network substrate: functions, expressions, networks, I/O.

This subpackage is the SIS-equivalent infrastructure layer the paper's
mapper runs on: truth tables (:mod:`repro.network.functions`), a genlib/eqn
style expression language (:mod:`repro.network.expr`), the logic-network
data structure (:mod:`repro.network.bnet`), BLIF I/O
(:mod:`repro.network.blif`), technology decomposition into NAND2-INV
subject graphs (:mod:`repro.network.decompose`,
:mod:`repro.network.subject`) and bit-parallel simulation / equivalence
checking (:mod:`repro.network.simulate`).
"""

from repro.network.functions import TruthTable
from repro.network.expr import Expr, parse_expr
from repro.network.bnet import BooleanNetwork, Node, Latch
from repro.network.subject import SubjectGraph, SubjectNode, NodeType
from repro.network.decompose import decompose_network
from repro.network.edits import Edit, EditScript, script_from_name
from repro.network.blif import read_blif, write_blif
from repro.network.npn import npn_canonical, npn_classes, npn_equivalent
from repro.network.transform import extract_cone, sweep
from repro.network.dot import netlist_to_dot, pattern_to_dot, subject_to_dot
from repro.network.mapped_io import (
    dumps_mapped_blif,
    dumps_verilog,
    loads_mapped_blif,
    read_mapped_blif,
    write_mapped_blif,
    write_verilog,
)

__all__ = [
    "TruthTable",
    "Expr",
    "parse_expr",
    "BooleanNetwork",
    "Node",
    "Latch",
    "SubjectGraph",
    "SubjectNode",
    "NodeType",
    "decompose_network",
    "Edit",
    "EditScript",
    "script_from_name",
    "read_blif",
    "write_blif",
    "dumps_mapped_blif",
    "dumps_verilog",
    "loads_mapped_blif",
    "read_mapped_blif",
    "write_mapped_blif",
    "write_verilog",
    "npn_canonical",
    "npn_classes",
    "npn_equivalent",
    "subject_to_dot",
    "pattern_to_dot",
    "netlist_to_dot",
    "sweep",
    "extract_cone",
]
