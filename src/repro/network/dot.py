"""Graphviz DOT export for every circuit representation.

Small, dependency-free writers that make subject graphs, pattern graphs
and mapped netlists inspectable with ``dot -Tsvg``.  Node shapes follow
the usual convention: inputs as triangles, NAND2/gates as boxes,
inverters as small circles, outputs as double octagons.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.netlist import MappedNetlist
from repro.library.patterns import PatternGraph
from repro.network.subject import NodeType, SubjectGraph

__all__ = ["subject_to_dot", "pattern_to_dot", "netlist_to_dot"]


def _esc(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def subject_to_dot(subject: SubjectGraph, name: Optional[str] = None) -> str:
    """DOT text for a NAND2-INV subject graph."""
    lines: List[str] = [f'digraph "{_esc(name or subject.name)}" {{',
                        "  rankdir=LR;"]
    for node in subject.nodes:
        if node.is_pi:
            lines.append(
                f'  n{node.uid} [shape=triangle, label="{_esc(node.name or "?")}"];'
            )
        elif node.kind is NodeType.INV:
            lines.append(f'  n{node.uid} [shape=circle, label="inv"];')
        else:
            lines.append(f'  n{node.uid} [shape=box, label="nand"];')
    for node in subject.nodes:
        for fanin in node.fanins:
            lines.append(f"  n{fanin.uid} -> n{node.uid};")
    for po_name, driver in subject.pos:
        tag = f"po_{_esc(po_name)}"
        lines.append(f'  "{tag}" [shape=doubleoctagon, label="{_esc(po_name)}"];')
        lines.append(f'  n{driver.uid} -> "{tag}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def pattern_to_dot(pattern: PatternGraph, name: Optional[str] = None) -> str:
    """DOT text for a pattern graph (leaves labelled with their pins)."""
    title = name or f"{pattern.gate.name}_pattern"
    lines: List[str] = [f'digraph "{_esc(title)}" {{', "  rankdir=LR;"]
    for node in pattern.nodes:
        if node.is_leaf:
            lines.append(
                f'  p{node.uid} [shape=triangle, label="{_esc(node.pin or "?")}"];'
            )
        elif node.kind is NodeType.INV:
            lines.append(f'  p{node.uid} [shape=circle, label="inv"];')
        else:
            lines.append(f'  p{node.uid} [shape=box, label="nand"];')
    for node in pattern.nodes:
        for fanin in node.fanins:
            lines.append(f"  p{fanin.uid} -> p{node.uid};")
    lines.append(
        f'  out [shape=doubleoctagon, label="{_esc(pattern.gate.name)}"];'
    )
    lines.append(f"  p{pattern.root.uid} -> out;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def netlist_to_dot(
    netlist: MappedNetlist,
    name: Optional[str] = None,
    critical_path: Optional[List[str]] = None,
) -> str:
    """DOT text for a mapped netlist; an optional critical path is red."""
    hot = set(critical_path or [])
    lines: List[str] = [f'digraph "{_esc(name or netlist.name)}" {{',
                        "  rankdir=LR;"]
    for pi in netlist.pis:
        color = ', color=red' if pi in hot else ""
        lines.append(f'  "{_esc(pi)}" [shape=triangle{color}];')
    for gate in netlist.gates:
        color = ', color=red' if gate.output in hot else ""
        lines.append(
            f'  "{_esc(gate.output)}" '
            f'[shape=box, label="{_esc(gate.gate.name)}\\n{_esc(gate.output)}"{color}];'
        )
        for signal in gate.inputs:
            edge_color = (
                " [color=red]"
                if signal in hot and gate.output in hot
                else ""
            )
            lines.append(f'  "{_esc(signal)}" -> "{_esc(gate.output)}"{edge_color};')
    for po_name, signal in netlist.pos:
        tag = f"po_{po_name}"
        lines.append(f'  "{_esc(tag)}" [shape=doubleoctagon, label="{_esc(po_name)}"];')
        lines.append(f'  "{_esc(signal)}" -> "{_esc(tag)}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
