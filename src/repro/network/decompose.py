"""Technology decomposition: Boolean network -> NAND2-INV subject graph.

This is the SIS ``tech_decomp -a 2 -o 2`` equivalent that produces the
*subject graph* of Keutzer's formulation.  Every node function is first
converted to an irredundant sum-of-products (ISOP) and then realised in
NAND2-INV form with balanced trees::

    P1 + P2 + ... + Pk  =  NAND(!P1-half, !P2-half, ...)   (NAND-NAND form)
    literal products    =  balanced NAND2/INV trees

Structural hashing (double-inverter elimination, commutative NAND sharing)
keeps the graph compact.  Constants are legalised with the standard
``NAND(x, !x) == 1`` trick off the first primary input.

The paper claims delay optimality *with respect to the subject graph*, so
any deterministic decomposition is a faithful substrate; this one mirrors
the balanced decomposition SIS uses before mapping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Union

from repro.errors import NetworkError
from repro.network.bnet import BooleanNetwork
from repro.network.subject import NodeType, SubjectGraph, SubjectNode

if TYPE_CHECKING:
    from repro.network.functions import Cube, TruthTable

__all__ = [
    "decompose_network",
    "nand_tree",
    "and_tree",
    "or_tree",
]

#: Sentinel values used while propagating constants through decomposition.
_CONST0 = "const0"
_CONST1 = "const1"

Value = Union[SubjectNode, str]


#: Decomposition styles for multi-input operators.  ``balanced`` gives
#: logarithmic-depth trees (SIS's default and what the tables use);
#: ``linear`` gives left-linear chains.  Mapping the same circuit under
#: both quantifies the subject-graph sensitivity the paper's Section 4
#: discusses (Lehman et al.'s motivation).
STYLES = ("balanced", "linear")


def _check_style(style: str) -> None:
    if style not in STYLES:
        raise ValueError(f"unknown decomposition style {style!r}; use {STYLES}")


def nand_tree(
    graph: SubjectGraph,
    operands: Sequence[SubjectNode],
    style: str = "balanced",
) -> SubjectNode:
    """NAND of one or more operands (one operand -> inverter)."""
    _check_style(style)
    if not operands:
        raise NetworkError("nand_tree needs at least one operand")
    if len(operands) == 1:
        return _invert(graph, operands[0])
    if len(operands) == 2:
        return graph.add_nand2(operands[0], operands[1])
    if style == "linear":
        acc = and_tree(graph, operands[:-1], style)
        return graph.add_nand2(acc, operands[-1])
    mid = len(operands) // 2
    left = and_tree(graph, operands[:mid], style)
    right = and_tree(graph, operands[mid:], style)
    return graph.add_nand2(left, right)


def and_tree(
    graph: SubjectGraph,
    operands: Sequence[SubjectNode],
    style: str = "balanced",
) -> SubjectNode:
    """AND of one or more operands."""
    _check_style(style)
    if not operands:
        raise NetworkError("and_tree needs at least one operand")
    if len(operands) == 1:
        return operands[0]
    if style == "linear":
        acc = operands[0]
        for op in operands[1:]:
            acc = _invert(graph, graph.add_nand2(acc, op))
        return acc
    return _invert(graph, nand_tree(graph, operands, style))


def or_tree(
    graph: SubjectGraph,
    operands: Sequence[SubjectNode],
    style: str = "balanced",
) -> SubjectNode:
    """OR of one or more operands: NAND of complemented inputs."""
    _check_style(style)
    if not operands:
        raise NetworkError("or_tree needs at least one operand")
    if len(operands) == 1:
        return operands[0]
    inverted = [_invert(graph, op) for op in operands]
    return nand_tree(graph, inverted, style)


def _invert(graph: SubjectGraph, node: SubjectNode) -> SubjectNode:
    """Inverter with double-inverter elimination."""
    if node.kind is NodeType.INV:
        return node.fanins[0]
    return graph.add_inv(node)


def _make_const(graph: SubjectGraph, value: int) -> SubjectNode:
    """Materialise a constant using NAND(x, !x) == 1 off the first PI."""
    if not graph.pis:
        raise NetworkError("cannot materialise a constant: network has no PIs")
    pi = graph.pis[0]
    one = graph.add_nand2(pi, graph.add_inv(pi))
    return one if value else graph.add_inv(one)


def _substitute_var(tt: "TruthTable", j: int, i: int, negate: bool) -> "TruthTable":
    """Replace input ``j`` by input ``i`` (or its complement) in ``tt``.

    The result no longer depends on input ``j``.  Used when two fanins
    turn out to carry structurally identical (or complementary) subject
    values after hashing, which would otherwise let SOP literals collide
    into degenerate NAND2(x, x) nodes.
    """
    from repro.network.functions import TruthTable

    n = tt.n_vars
    bits = 0
    for a in range(1 << n):
        xi = (a >> i) & 1
        forced = xi ^ int(negate)
        a_sub = (a & ~(1 << j)) | (forced << j)
        if tt.evaluate(a_sub):
            bits |= 1 << a
    return TruthTable(n, bits)


def _is_complement(a: SubjectNode, b: SubjectNode) -> bool:
    """True when one node is structurally the inverter of the other."""
    if a.kind is NodeType.INV and a.fanins[0] is b:
        return True
    return b.kind is NodeType.INV and b.fanins[0] is a


def _decompose_node_tt(
    graph: SubjectGraph,
    tt: "TruthTable",
    fanin_values: List[Value],
    style: str = "balanced",
) -> Value:
    """Decompose one node function given subject values for its fanins."""
    # Substitute known constants by cofactoring.
    work = tt
    for idx, value in enumerate(fanin_values):
        if value == _CONST0:
            work = work.cofactor(idx, 0)
        elif value == _CONST1:
            work = work.cofactor(idx, 1)
    # Merge fanins whose subject values are structurally equal or
    # complementary, so every remaining literal is structurally unique.
    n = len(fanin_values)
    for i in range(n):
        vi = fanin_values[i]
        if isinstance(vi, str) or not work.depends_on(i):
            continue
        for j in range(i + 1, n):
            vj = fanin_values[j]
            if isinstance(vj, str) or not work.depends_on(j):
                continue
            if vj is vi:
                work = _substitute_var(work, j, i, negate=False)
            elif _is_complement(vi, vj):
                work = _substitute_var(work, j, i, negate=True)
    if work.is_const0():
        return _CONST0
    if work.is_const1():
        return _CONST1

    shrunk, keep = work.shrunk()
    operands: List[SubjectNode] = [fanin_values[old] for old in keep]  # type: ignore[misc]

    if shrunk.n_vars == 1:
        # Identity or inverter.
        return operands[0] if shrunk.bits == 0b10 else _invert(graph, operands[0])

    # Decompose whichever phase has the cheaper two-level form (SIS-style):
    # e.g. !(a*b) is one NAND2 via its complement rather than NAND of two
    # double inverters via its own ISOP.
    cubes_pos = shrunk.isop()
    cubes_neg = (~shrunk).isop()

    def cost(cubes: List["Cube"]) -> tuple:
        return (len(cubes), sum(len(c) for c in cubes))

    if cost(cubes_neg) < cost(cubes_pos):
        return _invert(graph, _build_sop(graph, cubes_neg, operands, style))
    return _build_sop(graph, cubes_pos, operands, style)


def _build_sop(
    graph: SubjectGraph,
    cubes: List["Cube"],
    operands: List[SubjectNode],
    style: str,
) -> SubjectNode:
    """Realise a sum of cubes as a NAND-NAND network over ``operands``."""
    cube_nands: List[SubjectNode] = []
    for cube in cubes:
        literals = [
            operands[var] if phase else _invert(graph, operands[var])
            for var, phase in cube
        ]
        # !P_i as a single NAND tree over the cube's literals.
        cube_nands.append(nand_tree(graph, literals, style))
    if len(cube_nands) == 1:
        # Single cube: f = P = !(NAND of literals).
        return _invert(graph, cube_nands[0])
    # f = P1 + ... + Pk = NAND(!P1, ..., !Pk).
    return nand_tree(graph, cube_nands, style)


def decompose_network(
    net: BooleanNetwork,
    name: str | None = None,
    style: str = "balanced",
) -> SubjectGraph:
    """Decompose the combinational core of ``net`` into a subject graph.

    Primary inputs and latch outputs become subject-graph PIs; primary
    outputs and latch inputs become subject-graph POs.  Constant outputs
    are legalised via ``NAND(x, !x)``.  ``style`` selects the multi-input
    operator decomposition (``balanced`` or ``linear``) — the paper's
    optimality claim is relative to this choice, and the harness's
    decomposition-sensitivity experiment sweeps it.
    """
    _check_style(style)
    graph = SubjectGraph(name or net.name)
    values: Dict[str, Value] = {}
    for signal in net.combinational_inputs():
        values[signal] = graph.add_pi(signal)

    for node in net.topological_order():
        fanin_values = [values[f] for f in node.fanins]
        values[node.name] = _decompose_node_tt(graph, node.tt, fanin_values, style)

    for signal in net.combinational_outputs():
        if signal not in values:
            raise NetworkError(f"output {signal!r} is undefined")
        value = values[signal]
        if value == _CONST0:
            value = _make_const(graph, 0)
        elif value == _CONST1:
            value = _make_const(graph, 1)
        graph.set_po(signal, value)
    return graph
