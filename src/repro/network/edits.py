"""Typed netlist edits for incremental (ECO) remapping.

An :class:`EditScript` is an ordered list of small, structure-preserving
modifications to a combinational :class:`BooleanNetwork`:

* ``rewire``  — repoint one fanin pin of a node to another existing signal,
* ``insert``  — break an edge with a new inverter or buffer node,
* ``delete``  — bypass a node, rerouting its readers to one of its fanins,
* ``po``      — toggle primary-output status of a signal,
* ``stuck``   — replace a node's function with a constant of the same arity.

Every edit validates the invariants the rest of the pipeline relies on
(acyclicity, no duplicate fanins, no dangling references, at least one PO),
so an applied script always yields a network that ``check()`` accepts and
that technology decomposition can consume.

Scripts serialise to a compact string (:meth:`EditScript.encode`) which the
edit-pair fuzz generator embeds in the edited network's *name*; a replay
tool can recover the exact edit sequence from the name alone with
:func:`script_from_name`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple
from urllib.parse import quote, unquote

from repro.errors import NetworkError
from repro.network.bnet import BooleanNetwork
from repro.network.functions import TruthTable

__all__ = [
    "EDIT_OPS",
    "Edit",
    "EditScript",
    "NAME_MARKER",
    "script_from_name",
]

#: The supported edit operations, in a fixed order (the generator indexes it).
EDIT_OPS: Tuple[str, ...] = ("rewire", "insert", "delete", "po", "stuck")

#: Separator between the base network name and the encoded script.
NAME_MARKER = "__eco__"

_FIELD_SEP = ":"
_EDIT_SEP = "+"

_BUF_TT = TruthTable.variable(0, 1)
_INV_TT = ~TruthTable.variable(0, 1)


def _q(text: str) -> str:
    """Percent-escape a field so separators never collide with signal names."""
    return quote(text, safe="")


@dataclass(frozen=True)
class Edit:
    """One atomic edit: an operation, a target signal, and an argument.

    The argument grammar per op (fields separated by ``:`` in encoded form):

    * ``rewire``: ``"{pin}:{signal}"`` — fanin pin index and the new source.
    * ``insert``: ``"{pin}:{new_name}:{inv|buf}"`` — break ``target``'s pin
      with a fresh inverter/buffer named ``new_name``.
    * ``delete``: ``"{pin}"`` — readers of ``target`` are rerouted to its
      fanin at that index.
    * ``po``: ``""`` — toggle PO status of ``target``.
    * ``stuck``: ``"0"`` or ``"1"`` — constant value.
    """

    op: str
    target: str
    arg: str = ""

    def __post_init__(self) -> None:
        if self.op not in EDIT_OPS:
            raise NetworkError(f"unknown edit op {self.op!r}")

    def encode(self) -> str:
        return _FIELD_SEP.join((self.op, _q(self.target), _q(self.arg)))

    @classmethod
    def decode(cls, text: str) -> "Edit":
        parts = text.split(_FIELD_SEP)
        if len(parts) != 3:
            raise NetworkError(f"malformed edit encoding {text!r}")
        return cls(parts[0], unquote(parts[1]), unquote(parts[2]))


@dataclass(frozen=True)
class EditScript:
    """An ordered, replayable sequence of :class:`Edit` operations."""

    edits: Tuple[Edit, ...]

    def __len__(self) -> int:
        return len(self.edits)

    def encode(self) -> str:
        return _EDIT_SEP.join(edit.encode() for edit in self.edits)

    @classmethod
    def decode(cls, text: str) -> "EditScript":
        if not text:
            return cls(edits=())
        return cls(edits=tuple(Edit.decode(part) for part in text.split(_EDIT_SEP)))

    def edited_name(self, base_name: str) -> str:
        """The canonical name of the edited network: replayable via the name."""
        return f"{base_name}{NAME_MARKER}{self.encode()}"

    def apply(self, net: BooleanNetwork, name: Optional[str] = None) -> BooleanNetwork:
        """Apply the script to a copy of ``net`` and validate the result.

        Args:
            net: the base network (combinational; latches are rejected).
            name: name for the edited network; defaults to
                :meth:`edited_name` so the script replays from the name.

        Raises:
            NetworkError: when an edit is inapplicable (bad pin, duplicate
                fanin, cycle, last PO removed, ...); the base network is
                never modified.
        """
        if net.latches:
            raise NetworkError("edit scripts support combinational networks only")
        out = net.copy(name if name is not None else self.edited_name(net.name))
        for i, edit in enumerate(self.edits):
            try:
                _apply_one(out, edit)
            except NetworkError as exc:
                raise NetworkError(f"edit {i} ({edit.op} {edit.target!r}): {exc}") from exc
        if not out.pos:
            raise NetworkError("edit script removed every primary output")
        out.check()
        return out


def script_from_name(name: str) -> Tuple[str, EditScript]:
    """Recover ``(base_name, script)`` from an edited network's name."""
    base, sep, encoded = name.rpartition(NAME_MARKER)
    if not sep:
        raise NetworkError(f"network name {name!r} carries no encoded edit script")
    return base, EditScript.decode(encoded)


def _require_node(net: BooleanNetwork, target: str) -> None:
    if net.is_pi(target):
        raise NetworkError(f"target {target!r} is a primary input, not a logic node")


def _pin_index(net: BooleanNetwork, target: str, text: str) -> int:
    node = net.node(target)
    try:
        pin = int(text)
    except ValueError:
        raise NetworkError(f"bad pin index {text!r}") from None
    if not 0 <= pin < len(node.fanins):
        raise NetworkError(f"pin {pin} out of range for {len(node.fanins)} fanins")
    return pin


def _apply_rewire(net: BooleanNetwork, edit: Edit) -> None:
    pin_text, _, signal = edit.arg.partition(_FIELD_SEP)
    _require_node(net, edit.target)
    pin = _pin_index(net, edit.target, pin_text)
    node = net.node(edit.target)
    if not net.has_signal(signal):
        raise NetworkError(f"rewire source {signal!r} does not exist")
    fanins = list(node.fanins)
    if signal == fanins[pin]:
        raise NetworkError("rewire is a no-op (same source)")
    if signal in fanins:
        raise NetworkError(f"rewire would duplicate fanin {signal!r}")
    fanins[pin] = signal
    net.replace_node(edit.target, node.tt, fanins)


def _apply_insert(net: BooleanNetwork, edit: Edit) -> None:
    fields = edit.arg.split(_FIELD_SEP)
    if len(fields) != 3 or fields[2] not in ("inv", "buf"):
        raise NetworkError(f"bad insert argument {edit.arg!r}")
    pin_text, new_name, polarity = fields
    _require_node(net, edit.target)
    pin = _pin_index(net, edit.target, pin_text)
    node = net.node(edit.target)
    if net.has_signal(new_name):
        raise NetworkError(f"insert name {new_name!r} already exists")
    source = node.fanins[pin]
    tt = _INV_TT if polarity == "inv" else _BUF_TT
    net.add_node(new_name, tt, fanins=[source])
    fanins = list(node.fanins)
    if new_name in fanins:
        raise NetworkError(f"insert would duplicate fanin {new_name!r}")
    fanins[pin] = new_name
    net.replace_node(edit.target, node.tt, fanins)


def _apply_delete(net: BooleanNetwork, edit: Edit) -> None:
    _require_node(net, edit.target)
    node = net.node(edit.target)
    if not node.fanins:
        raise NetworkError("cannot bypass a constant node (no fanins)")
    pin = _pin_index(net, edit.target, edit.arg or "0")
    replacement = node.fanins[pin]
    # Reroute readers first; refuse when a reader already reads the
    # replacement (Node rejects duplicate fanins).
    readers: List[Tuple[str, List[str]]] = []
    for user in net.nodes():
        if edit.target not in user.fanins:
            continue
        fanins = list(user.fanins)
        if replacement in fanins:
            raise NetworkError(
                f"delete would duplicate fanin {replacement!r} at {user.name!r}"
            )
        readers.append((user.name, [replacement if f == edit.target else f for f in fanins]))
    for user_name, fanins in readers:
        net.replace_node(user_name, net.node(user_name).tt, fanins)
    if edit.target in net.pos:
        if replacement in net.pos:
            net.pos = [po for po in net.pos if po != edit.target]
        else:
            net.pos = [replacement if po == edit.target else po for po in net.pos]
    net.remove_node(edit.target)


def _apply_po(net: BooleanNetwork, edit: Edit) -> None:
    if edit.target in net.pos:
        if len(net.pos) <= 1:
            raise NetworkError("cannot drop the last primary output")
        net.pos.remove(edit.target)
        return
    if not net.has_signal(edit.target):
        raise NetworkError(f"cannot expose undefined signal {edit.target!r} as PO")
    net.add_po(edit.target)


def _apply_stuck(net: BooleanNetwork, edit: Edit) -> None:
    if edit.arg not in ("0", "1"):
        raise NetworkError(f"bad stuck value {edit.arg!r}")
    _require_node(net, edit.target)
    node = net.node(edit.target)
    n_vars = len(node.fanins)
    tt = TruthTable.const1(n_vars) if edit.arg == "1" else TruthTable.const0(n_vars)
    net.replace_node(edit.target, tt, node.fanins)


def _apply_one(net: BooleanNetwork, edit: Edit) -> None:
    if edit.op == "rewire":
        _apply_rewire(net, edit)
    elif edit.op == "insert":
        _apply_insert(net, edit)
    elif edit.op == "delete":
        _apply_delete(net, edit)
    elif edit.op == "po":
        _apply_po(net, edit)
    elif edit.op == "stuck":
        _apply_stuck(net, edit)
    else:  # pragma: no cover - __post_init__ already rejects unknown ops
        raise NetworkError(f"unknown edit op {edit.op!r}")
    # Cycle / dangling-reference validation after every step so the first
    # offending edit is reported, not a confusing aggregate at the end.
    net.topological_order()
