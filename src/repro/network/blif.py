"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the subset SIS-era tools exchange: ``.model``, ``.inputs``,
``.outputs``, ``.names`` with PLA-style single-output covers, ``.latch``
(with optional initial value; clock specifications are ignored), and
``.end``.  Covers may be given as on-set (output value ``1``) or off-set
(``0``) rows; ``-`` is a don't-care input literal.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import NetworkError, ParseError
from repro.network.bnet import BooleanNetwork, INIT_UNKNOWN
from repro.network.functions import TruthTable, cube_to_tt

__all__ = ["read_blif", "write_blif", "loads_blif", "dumps_blif"]


def _logical_lines(text: str) -> Iterable[Tuple[int, List[str]]]:
    """Yield (line number, tokens) with continuation ('\\') handling."""
    pending: List[str] = []
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if line.endswith("\\"):
            if not pending:
                pending_line = lineno
            pending.extend(line[:-1].split())
            continue
        tokens = pending + line.split()
        start = pending_line if pending else lineno
        pending = []
        if tokens:
            yield start, tokens
    if pending:
        yield pending_line, pending


def _cover_to_tt(rows: Sequence[Tuple[str, str]], n_inputs: int, lineno: int) -> TruthTable:
    """Convert PLA rows [(input pattern, output value)] to a truth table."""
    if not rows:
        # ".names x" with no rows is constant 0 by BLIF convention.
        return TruthTable.const0(n_inputs)
    out_values = {value for _, value in rows}
    if out_values - {"0", "1"}:
        raise ParseError(f"bad output value in cover: {out_values}", lineno)
    if len(out_values) > 1:
        raise ParseError("cover mixes on-set and off-set rows", lineno)
    table = TruthTable.const0(n_inputs)
    for pattern, _ in rows:
        if len(pattern) != n_inputs:
            raise ParseError(
                f"cover row {pattern!r} has {len(pattern)} literals, "
                f"expected {n_inputs}",
                lineno,
            )
        cube = []
        for idx, ch in enumerate(pattern):
            if ch == "1":
                cube.append((idx, True))
            elif ch == "0":
                cube.append((idx, False))
            elif ch != "-":
                raise ParseError(f"bad literal {ch!r} in cover row", lineno)
        table = table | cube_to_tt(tuple(cube), n_inputs)
    if out_values == {"0"}:
        table = ~table
    return table


def loads_blif(
    text: str, name_hint: str = "blif", filename: Optional[str] = None
) -> BooleanNetwork:
    """Parse BLIF text into a :class:`BooleanNetwork`.

    ``filename`` (when given) is attached to every :class:`ParseError`
    alongside the line number and, where sensible, the offending token.
    Structural problems hit during construction (duplicate signals,
    dangling references found by ``net.check()``) are reported as located
    parse errors too, never as bare tracebacks.
    """
    net = BooleanNetwork(name_hint)
    outputs: List[str] = []
    pending_names: Tuple[int, List[str]] | None = None
    pending_rows: List[Tuple[str, str]] = []
    saw_model = False

    def err(
        message: str, lineno: Optional[int], token: Optional[str] = None
    ) -> ParseError:
        return ParseError(message, line=lineno, file=filename, token=token)

    def flush_names() -> None:
        nonlocal pending_names, pending_rows
        if pending_names is None:
            return
        lineno, signals = pending_names
        *fanins, output = signals
        try:
            if len(fanins) == 0:
                if not pending_rows:
                    tt = TruthTable.const0(0)
                else:
                    tt = _cover_to_tt(
                        [("", v) for _, v in pending_rows], 0, lineno
                    )
                net.add_node(output, tt, [])
            else:
                tt = _cover_to_tt(pending_rows, len(fanins), lineno)
                net.add_node(output, tt, fanins)
        except NetworkError as exc:
            raise err(str(exc), lineno, token=output) from exc
        except ParseError as exc:
            if exc.file is None and filename is not None:
                raise err(exc.bare_message, exc.line or lineno,
                          token=exc.token) from exc
            raise
        pending_names = None
        pending_rows = []

    for lineno, tokens in _logical_lines(text):
        head = tokens[0]
        if head.startswith("."):
            if head != ".names":
                flush_names()
            if head == ".model":
                if saw_model:
                    raise err("multiple .model sections unsupported", lineno,
                              token=" ".join(tokens))
                saw_model = True
                if len(tokens) > 1:
                    net.name = tokens[1]
            elif head == ".inputs":
                for sig in tokens[1:]:
                    try:
                        net.add_pi(sig)
                    except NetworkError as exc:
                        raise err(str(exc), lineno, token=sig) from exc
            elif head == ".outputs":
                outputs.extend(tokens[1:])
            elif head == ".names":
                flush_names()
                if len(tokens) < 2:
                    raise err(".names needs at least an output", lineno)
                pending_names = (lineno, tokens[1:])
            elif head == ".latch":
                if len(tokens) < 3:
                    raise err(".latch needs input and output", lineno)
                inp, out = tokens[1], tokens[2]
                init = INIT_UNKNOWN
                if tokens[-1] in ("0", "1", "2", "3"):
                    init = int(tokens[-1])
                try:
                    net.add_latch(inp, out, init)
                except NetworkError as exc:
                    raise err(str(exc), lineno, token=out) from exc
            elif head == ".end":
                break
            elif head in (".exdc", ".clock", ".wire_load_slope", ".default_input_arrival"):
                continue  # harmless extensions we ignore
            else:
                raise err(f"unsupported BLIF construct {head!r}", lineno, token=head)
        else:
            if pending_names is None:
                raise err(f"unexpected tokens {tokens!r}", lineno, token=tokens[0])
            if len(tokens) == 1:
                # Zero-input cover row: just the output value.
                pending_rows.append(("", tokens[0]))
            elif len(tokens) == 2:
                pending_rows.append((tokens[0], tokens[1]))
            else:
                raise err(f"bad cover row {tokens!r}", lineno, token=" ".join(tokens))

    flush_names()
    for sig in outputs:
        net.add_po(sig)
    try:
        net.check()
    except NetworkError as exc:
        raise err(str(exc), None) from exc
    return net


def read_blif(path: Union[str, os.PathLike]) -> BooleanNetwork:
    """Read a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return loads_blif(
        text,
        name_hint=os.path.splitext(os.path.basename(path))[0],
        filename=os.fspath(path),
    )


def dumps_blif(net: BooleanNetwork) -> str:
    """Serialise a network to BLIF text (on-set covers via ISOP)."""
    lines: List[str] = [f".model {net.name}"]
    if net.pis:
        lines.append(".inputs " + " ".join(net.pis))
    if net.pos:
        lines.append(".outputs " + " ".join(net.pos))
    for latch in net.latches:
        lines.append(f".latch {latch.input} {latch.output} {latch.init}")
    for node in net.topological_order():
        lines.append(".names " + " ".join(list(node.fanins) + [node.name]))
        n = len(node.fanins)
        cubes = node.tt.isop()
        if node.tt.is_const1():
            lines.append("1" if n == 0 else "-" * n + " 1")
        else:
            for cube in cubes:
                row = ["-"] * n
                for var, phase in cube:
                    row[var] = "1" if phase else "0"
                lines.append("".join(row) + " 1" if n else "1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(net: BooleanNetwork, path: Union[str, os.PathLike]) -> None:
    """Write a network to a BLIF file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_blif(net))
